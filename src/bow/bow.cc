#include "src/bow/bow.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/random.h"
#include "src/common/stopwatch.h"
#include "src/common/threadpool.h"
#include "src/core/interval_tightening.h"
#include "src/core/p3c.h"

namespace p3c::bow {

namespace {

/// A hyperrectangle in a subspace: the unit BoW's merge phase works on.
struct Rect {
  std::vector<size_t> attrs;                    // sorted
  std::vector<core::Interval> intervals;        // parallel to attrs

  double Volume() const {
    double v = 1.0;
    for (const core::Interval& i : intervals) v *= i.width();
    return v;
  }

  bool Contains(std::span<const double> row) const {
    for (const core::Interval& i : intervals) {
      if (!i.Contains(row[i.attr])) return false;
    }
    return true;
  }
};

/// True when the rectangles live in the same subspace and intersect on
/// every attribute of it.
bool CanMerge(const Rect& a, const Rect& b) {
  if (a.attrs != b.attrs) return false;
  for (size_t i = 0; i < a.intervals.size(); ++i) {
    if (!a.intervals[i].Overlaps(b.intervals[i])) return false;
  }
  return true;
}

Rect MergeRects(const Rect& a, const Rect& b) {
  Rect out = a;
  for (size_t i = 0; i < out.intervals.size(); ++i) {
    out.intervals[i].lower =
        std::min(out.intervals[i].lower, b.intervals[i].lower);
    out.intervals[i].upper =
        std::max(out.intervals[i].upper, b.intervals[i].upper);
  }
  return out;
}

}  // namespace

BoW::BoW(BoWOptions options) : options_(std::move(options)) {}

Result<core::ClusteringResult> BoW::Cluster(const data::Dataset& dataset) {
  Stopwatch watch;
  const size_t n = dataset.num_points();
  if (n == 0 || dataset.num_dims() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (!dataset.IsNormalized()) {
    return Status::InvalidArgument("dataset must be normalized to [0, 1]");
  }

  // ---- Random partitioning into blocks ----------------------------------
  const size_t block_size = std::max<size_t>(1, options_.samples_per_reducer);
  const size_t num_blocks = (n + block_size - 1) / block_size;
  num_blocks_ = num_blocks;
  std::vector<data::PointId> permutation(n);
  std::iota(permutation.begin(), permutation.end(), data::PointId{0});
  Rng rng(options_.seed);
  rng.Shuffle(permutation);

  // ---- Per-block clustering (the "reducers") -----------------------------
  core::P3CParams block_params = options_.params;
  if (options_.variant == PluginVariant::kLight) {
    block_params.light = true;
  } else {
    block_params.light = false;
    block_params.outlier = core::OutlierMode::kMVB;
  }

  ThreadPool pool(options_.num_threads);
  std::vector<std::vector<Rect>> block_rects(num_blocks);
  std::vector<core::CoreDetectionStats> block_stats(num_blocks);
  std::vector<Status> block_status(num_blocks);
  const double sample_fraction =
      options_.sample_fraction > 0.0 && options_.sample_fraction <= 1.0
          ? options_.sample_fraction
          : 1.0;
  pool.ParallelFor(num_blocks, [&](size_t b) {
    const size_t begin = b * block_size;
    size_t end = std::min(n, begin + block_size);
    if (sample_fraction < 1.0) {
      // Sampling mode: cluster only a prefix of the (already random)
      // block; merging and assignment still see every point.
      const auto sampled = static_cast<size_t>(
          static_cast<double>(end - begin) * sample_fraction);
      end = begin + std::max<size_t>(1, sampled);
    }
    std::vector<data::PointId> ids(permutation.begin() + begin,
                                   permutation.begin() + end);
    const data::Dataset block = dataset.Select(ids);
    // Single-threaded per block: parallelism comes from concurrent blocks,
    // exactly like one reducer per block in the original.
    core::P3CPipeline pipeline(block_params, /*num_threads=*/1);
    Result<core::ClusteringResult> result = pipeline.Cluster(block);
    if (!result.ok()) {
      block_status[b] = result.status();
      return;
    }
    block_stats[b] = result->core_stats;
    for (const core::ProjectedCluster& cluster : result->clusters) {
      Rect rect;
      rect.attrs = cluster.attrs;
      rect.intervals = cluster.intervals;
      block_rects[b].push_back(std::move(rect));
    }
  });
  for (const Status& st : block_status) {
    P3C_RETURN_NOT_OK(st);
  }

  // ---- Merge phase: stitch intersecting hyperrectangles ------------------
  std::vector<Rect> rects;
  for (auto& br : block_rects) {
    rects.insert(rects.end(), std::make_move_iterator(br.begin()),
                 std::make_move_iterator(br.end()));
  }
  num_merges_ = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < rects.size() && !changed; ++i) {
      for (size_t j = i + 1; j < rects.size(); ++j) {
        if (CanMerge(rects[i], rects[j])) {
          rects[i] = MergeRects(rects[i], rects[j]);
          rects.erase(rects.begin() + static_cast<long>(j));
          ++num_merges_;
          changed = true;
          break;
        }
      }
    }
  }

  // ---- Final assignment: smallest containing rectangle wins --------------
  core::ClusteringResult result;
  for (const core::CoreDetectionStats& s : block_stats) {
    result.core_stats.num_candidates_generated += s.num_candidates_generated;
    result.core_stats.num_proven += s.num_proven;
    result.core_stats.num_support_batches += s.num_support_batches;
    result.core_stats.num_maximal += s.num_maximal;
    result.core_stats.num_after_redundancy += s.num_after_redundancy;
    result.core_stats.num_levels =
        std::max(result.core_stats.num_levels, s.num_levels);
  }
  if (rects.empty()) {
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

  // Sort by volume so "first containing rect" is the most specific one.
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    return a.Volume() < b.Volume();
  });
  std::vector<std::vector<data::PointId>> members(rects.size());
  {
    const size_t num_tasks = std::min<size_t>(n, pool.num_threads() * 4);
    std::vector<std::vector<std::vector<data::PointId>>> local(
        num_tasks, std::vector<std::vector<data::PointId>>(rects.size()));
    pool.ParallelFor(num_tasks, [&](size_t task) {
      const size_t begin = n * task / num_tasks;
      const size_t end = n * (task + 1) / num_tasks;
      for (size_t i = begin; i < end; ++i) {
        const auto row = dataset.Row(static_cast<data::PointId>(i));
        for (size_t r = 0; r < rects.size(); ++r) {
          if (rects[r].Contains(row)) {
            local[task][r].push_back(static_cast<data::PointId>(i));
            break;
          }
        }
      }
    });
    for (auto& task_local : local) {
      for (size_t r = 0; r < rects.size(); ++r) {
        members[r].insert(members[r].end(), task_local[r].begin(),
                          task_local[r].end());
      }
    }
  }

  std::vector<size_t> arel;
  for (size_t r = 0; r < rects.size(); ++r) {
    if (members[r].empty()) continue;
    core::ProjectedCluster cluster;
    cluster.points = std::move(members[r]);
    cluster.attrs = rects[r].attrs;
    cluster.intervals =
        core::TightenIntervals(dataset, cluster.points, cluster.attrs);
    arel.insert(arel.end(), cluster.attrs.begin(), cluster.attrs.end());
    result.clusters.push_back(std::move(cluster));
  }
  std::sort(arel.begin(), arel.end());
  arel.erase(std::unique(arel.begin(), arel.end()), arel.end());
  result.arel = std::move(arel);
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace p3c::bow
