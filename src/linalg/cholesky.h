#ifndef P3C_LINALG_CHOLESKY_H_
#define P3C_LINALG_CHOLESKY_H_

#include "src/common/status.h"
#include "src/linalg/matrix.h"

namespace p3c::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix, plus the solve/inverse/log-det operations the clustering code
/// needs for Gaussian densities and Mahalanobis distances.
///
/// The factorization fails with InvalidArgument for non-square input and
/// with FailedPrecondition when a pivot is not strictly positive (matrix
/// not positive definite); callers regularize covariance estimates with
/// Matrix::AddToDiagonal before retrying.
class Cholesky {
 public:
  /// Factorizes `a`. On success the returned object owns the lower factor.
  static Result<Cholesky> Factorize(const Matrix& a);

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Inverse of A (solves against the identity, column by column).
  Matrix Inverse() const;

  /// log(det(A)) = 2 * sum_i log(L_ii). Stable for the tiny determinants
  /// of high-dimensional Gaussians.
  double LogDet() const;

  /// Mahalanobis squared distance (x - mu)^T A^{-1} (x - mu) without
  /// forming the inverse: forward-substitute L y = (x - mu), return |y|^2.
  double MahalanobisSquared(const Vector& x, const Vector& mu) const;

  size_t dim() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}

  Matrix l_;
};

}  // namespace p3c::linalg

#endif  // P3C_LINALG_CHOLESKY_H_
