#ifndef P3C_LINALG_MATRIX_H_
#define P3C_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace p3c::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Sized for the small systems this library solves: covariance matrices
/// restricted to the relevant subspace `Arel` (tens of dimensions). All
/// operations are straightforward O(n^3)/O(n^2) loops; no BLAS.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of size n x n.
  static Matrix Identity(size_t n);

  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const Vector& d);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// this + other. Dimensions must match.
  Matrix Add(const Matrix& other) const;
  /// this - other. Dimensions must match.
  Matrix Sub(const Matrix& other) const;
  /// this * scalar.
  Matrix Scale(double s) const;
  /// Matrix product this * other; requires cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;
  /// Matrix-vector product; requires cols() == v.size().
  Vector MatVec(const Vector& v) const;
  /// Transpose.
  Matrix Transposed() const;

  /// Adds `eps` to every diagonal entry in place (ridge regularization of
  /// near-singular covariance estimates).
  void AddToDiagonal(double eps);

  /// Rank-1 update: this += w * v v^T (v must have cols() entries;
  /// requires a square matrix). Used when accumulating covariances.
  void AddOuterProduct(const Vector& v, double w);

  /// Max |a_ij - b_ij|; utility for tests.
  double MaxAbsDiff(const Matrix& other) const;

  bool IsSquare() const { return rows_ == cols_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double Dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance between two equally sized vectors.
double SquaredDistance(const Vector& a, const Vector& b);

/// a + b element-wise.
Vector VecAdd(const Vector& a, const Vector& b);
/// a - b element-wise.
Vector VecSub(const Vector& a, const Vector& b);
/// a * s element-wise.
Vector VecScale(const Vector& a, double s);

}  // namespace p3c::linalg

#endif  // P3C_LINALG_MATRIX_H_
