#include "src/linalg/matrix.h"

#include <cassert>
#include <cmath>

#include "src/core/kernels/kernels.h"

namespace p3c::linalg {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::MatVec(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

void Matrix::AddToDiagonal(double eps) {
  assert(IsSquare());
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += eps;
}

void Matrix::AddOuterProduct(const Vector& v, double w) {
  assert(IsSquare() && v.size() == cols_);
  core::kernels::Active().outer_accumulate(data_.data(), v.data(), w, cols_);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double SquaredDistance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

Vector VecAdd(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector VecSub(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector VecScale(const Vector& a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace p3c::linalg
