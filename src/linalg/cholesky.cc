#include "src/linalg/cholesky.h"

#include <cassert>
#include <cmath>

namespace p3c::linalg {

Result<Cholesky> Cholesky::Factorize(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (pivot " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::Solve(const Vector& b) const {
  const size_t n = l_.rows();
  assert(b.size() == n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  // Backward substitution: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::Inverse() const {
  const size_t n = l_.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const Vector col = Solve(e);
    for (size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    e[c] = 0.0;
  }
  return inv;
}

double Cholesky::LogDet() const {
  double acc = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

double Cholesky::MahalanobisSquared(const Vector& x, const Vector& mu) const {
  const size_t n = l_.rows();
  assert(x.size() == n && mu.size() == n);
  // Forward substitution of (x - mu) through L; the squared norm of the
  // result equals (x-mu)^T A^{-1} (x-mu).
  Vector y(n);
  double acc_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double acc = x[i] - mu[i];
    for (size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
    acc_sq += y[i] * y[i];
  }
  return acc_sq;
}

}  // namespace p3c::linalg
