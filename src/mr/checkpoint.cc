#include "src/mr/checkpoint.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/common/trace.h"
#include "src/core/interval.h"
#include "src/core/signature.h"
#include "src/data/io.h"

namespace p3c::mr {

namespace {

/// Bound on manifest/payload element counts: no real pipeline has more
/// than a handful of phases, and hostile payloads must not drive
/// multi-gigabyte allocations before validation finishes.
constexpr uint64_t kMaxPhases = 64;

Status MakeDirectories(const std::string& dir) {
  // mkdir -p: create each prefix, tolerating ones that already exist.
  std::string prefix;
  prefix.reserve(dir.size());
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix.push_back(dir[i]);
      continue;
    }
    if (!prefix.empty() &&
        ::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::IOError("cannot create checkpoint directory: " + prefix +
                             ": " + std::strerror(errno));
    }
    if (i < dir.size()) prefix.push_back('/');
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

uint64_t DatasetFingerprint(const data::Dataset& dataset) {
  const uint64_t n = dataset.num_points();
  const uint64_t d = dataset.num_dims();
  uint64_t h = data::Fnv1a64(&n, sizeof(n));
  h = data::Fnv1a64(&d, sizeof(d), h);
  const auto& values = dataset.values();
  return data::Fnv1a64(values.data(), values.size() * sizeof(double), h);
}

uint64_t ParamsHash(const core::P3CParams& params) {
  // Serialize every field through the exact encoder the checkpoints
  // use, then hash the bytes. Adding a parameter to P3CParams and to
  // this list invalidates old checkpoints automatically — the safe
  // default for a knob that changes pipeline output.
  BlobWriter w;
  w.PutU32(kCheckpointFormatVersion);
  w.PutU32(static_cast<uint32_t>(params.binning));
  w.PutDouble(params.alpha_chi2);
  w.PutDouble(params.alpha_poisson);
  w.PutU32(static_cast<uint32_t>(params.proving));
  w.PutDouble(params.theta_cc);
  w.PutU32(params.redundancy_filter ? 1 : 0);
  w.PutU32(params.multilevel_candidates ? 1 : 0);
  w.PutU64(params.t_c);
  w.PutU64(params.t_gen);
  w.PutU64(params.max_candidates_per_level);
  w.PutU64(params.max_join_pairs);
  w.PutU64(params.max_em_iterations);
  w.PutDouble(params.em_tolerance);
  w.PutDouble(params.covariance_ridge);
  w.PutU32(static_cast<uint32_t>(params.outlier));
  w.PutDouble(params.outlier_alpha);
  w.PutU32(params.ai_proving ? 1 : 0);
  w.PutU32(params.light ? 1 : 0);
  return data::Fnv1a64(w.buffer().data(), w.buffer().size());
}

// ---- BlobWriter / BlobReader ----------------------------------------------

void BlobWriter::PutU32(uint32_t v) {
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BlobWriter::PutU64(uint64_t v) {
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BlobWriter::PutI32(int32_t v) {
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BlobWriter::PutDouble(double v) {
  out_.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BlobWriter::PutString(const std::string& s) {
  PutU64(s.size());
  out_.append(s);
}

BlobReader::BlobReader(const std::string& buffer, std::string context)
    : buffer_(buffer), context_(std::move(context)) {}

bool BlobReader::Take(void* dst, size_t len) {
  if (!status_.ok()) return false;
  if (len > buffer_.size() - pos_ || pos_ > buffer_.size()) {
    status_ = Status::IOError(StringPrintf(
        "%s: truncated checkpoint payload (need %zu bytes at offset %zu of "
        "%zu)",
        context_.c_str(), len, pos_, buffer_.size()));
    return false;
  }
  std::memcpy(dst, buffer_.data() + pos_, len);
  pos_ += len;
  return true;
}

uint32_t BlobReader::GetU32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint64_t BlobReader::GetU64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

int32_t BlobReader::GetI32() {
  int32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

double BlobReader::GetDouble() {
  double v = 0.0;
  Take(&v, sizeof(v));
  return v;
}

std::string BlobReader::GetString() {
  const uint64_t len = GetU64();
  if (!status_.ok()) return {};
  if (len > buffer_.size() - pos_) {
    status_ = Status::IOError(StringPrintf(
        "%s: string length %llu overruns payload (%zu bytes left)",
        context_.c_str(), static_cast<unsigned long long>(len),
        buffer_.size() - pos_));
    return {};
  }
  std::string out = buffer_.substr(pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return out;
}

Status BlobReader::Finish() const {
  P3C_RETURN_NOT_OK(status_);
  if (pos_ != buffer_.size()) {
    return Status::IOError(StringPrintf(
        "%s: %zu trailing bytes after the last decoded field",
        context_.c_str(), buffer_.size() - pos_));
  }
  return Status::OK();
}

// ---- MetricBag codec -------------------------------------------------------

void EncodeMetricBag(const MetricBag& bag, BlobWriter& writer) {
  writer.PutU64(bag.values().size());
  for (const auto& [name, metric] : bag.values()) {
    writer.PutString(name);
    writer.PutU32(static_cast<uint32_t>(metric.kind));
    writer.PutU64(metric.count);
    writer.PutDouble(metric.sum);
    writer.PutDouble(metric.min);
    writer.PutDouble(metric.max);
    for (uint64_t bucket : metric.buckets) writer.PutU64(bucket);
  }
}

Result<MetricBag> DecodeMetricBag(BlobReader& reader) {
  MetricBag bag;
  const uint64_t n = reader.GetU64();
  for (uint64_t i = 0; i < n && reader.status().ok(); ++i) {
    const std::string name = reader.GetString();
    Metric metric;
    const uint32_t kind = reader.GetU32();
    if (kind > static_cast<uint32_t>(MetricKind::kHistogram)) {
      return Status::IOError(
          StringPrintf("metric '%s' has unknown kind %u", name.c_str(), kind));
    }
    metric.kind = static_cast<MetricKind>(kind);
    metric.count = reader.GetU64();
    metric.sum = reader.GetDouble();
    metric.min = reader.GetDouble();
    metric.max = reader.GetDouble();
    for (size_t b = 0; b < Metric::kNumBuckets; ++b) {
      metric.buckets[b] = reader.GetU64();
    }
    bag.Set(name, metric);
  }
  P3C_RETURN_NOT_OK(reader.status());
  return bag;
}

// ---- Phase state codecs ----------------------------------------------------

namespace {

void EncodeSignature(const core::Signature& signature, BlobWriter& writer) {
  writer.PutU64(signature.intervals().size());
  for (const core::Interval& interval : signature.intervals()) {
    writer.PutU64(interval.attr);
    writer.PutDouble(interval.lower);
    writer.PutDouble(interval.upper);
  }
}

Result<core::Signature> DecodeSignature(BlobReader& reader) {
  const uint64_t n = reader.GetU64();
  std::vector<core::Interval> intervals;
  for (uint64_t i = 0; i < n && reader.status().ok(); ++i) {
    core::Interval interval;
    interval.attr = static_cast<size_t>(reader.GetU64());
    interval.lower = reader.GetDouble();
    interval.upper = reader.GetDouble();
    intervals.push_back(interval);
  }
  P3C_RETURN_NOT_OK(reader.status());
  return core::Signature::Make(std::move(intervals));
}

}  // namespace

std::string EncodeHistogramState(const HistogramPhaseState& state) {
  BlobWriter w;
  w.PutU64(state.histograms.size());
  for (const stats::Histogram& h : state.histograms) {
    w.PutU64(h.num_bins());
    for (uint64_t count : h.counts()) w.PutU64(count);
  }
  EncodeMetricBag(state.counters, w);
  return w.Take();
}

Result<HistogramPhaseState> DecodeHistogramState(const std::string& payload) {
  BlobReader r(payload, "histogram state");
  HistogramPhaseState state;
  const uint64_t n = r.GetU64();
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) {
    const uint64_t bins = r.GetU64();
    if (!r.status().ok()) break;
    if (bins > payload.size()) {
      return Status::IOError("histogram state: implausible bin count");
    }
    stats::Histogram h(static_cast<size_t>(bins));
    for (uint64_t b = 0; b < bins; ++b) h.counts()[b] = r.GetU64();
    state.histograms.push_back(std::move(h));
  }
  Result<MetricBag> counters = DecodeMetricBag(r);
  if (!counters.ok()) return counters.status();
  state.counters = std::move(counters).value();
  P3C_RETURN_NOT_OK(r.Finish());
  return state;
}

std::string EncodeCoresState(const CoresPhaseState& state) {
  BlobWriter w;
  w.PutU64(state.stats.num_levels);
  w.PutU64(state.stats.num_candidates_generated);
  w.PutU64(state.stats.num_signatures_counted);
  w.PutU64(state.stats.num_proven);
  w.PutU64(state.stats.num_support_batches);
  w.PutU64(state.stats.num_maximal);
  w.PutU32(state.stats.truncated ? 1 : 0);
  w.PutU64(state.stats.num_after_redundancy);
  w.PutU64(state.cores.size());
  for (const core::ClusterCore& core : state.cores) {
    EncodeSignature(core.signature, w);
    w.PutU64(core.support);
    w.PutDouble(core.expected_support);
  }
  EncodeMetricBag(state.counters, w);
  return w.Take();
}

Result<CoresPhaseState> DecodeCoresState(const std::string& payload) {
  BlobReader r(payload, "cluster-cores state");
  CoresPhaseState state;
  state.stats.num_levels = static_cast<size_t>(r.GetU64());
  state.stats.num_candidates_generated = r.GetU64();
  state.stats.num_signatures_counted = r.GetU64();
  state.stats.num_proven = r.GetU64();
  state.stats.num_support_batches = static_cast<size_t>(r.GetU64());
  state.stats.num_maximal = static_cast<size_t>(r.GetU64());
  state.stats.truncated = r.GetU32() != 0;
  state.stats.num_after_redundancy = static_cast<size_t>(r.GetU64());
  const uint64_t n = r.GetU64();
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) {
    Result<core::Signature> signature = DecodeSignature(r);
    if (!signature.ok()) return signature.status();
    core::ClusterCore core;
    core.signature = std::move(signature).value();
    core.support = r.GetU64();
    core.expected_support = r.GetDouble();
    state.cores.push_back(std::move(core));
  }
  Result<MetricBag> counters = DecodeMetricBag(r);
  if (!counters.ok()) return counters.status();
  state.counters = std::move(counters).value();
  P3C_RETURN_NOT_OK(r.Finish());
  return state;
}

std::string EncodeSupportSetsState(const SupportSetsPhaseState& state) {
  BlobWriter w;
  w.PutU64(state.support_sets.size());
  for (const auto& set : state.support_sets) {
    w.PutU64(set.size());
    for (data::PointId point : set) w.PutU32(point);
  }
  w.PutU64(state.unique_assignment.size());
  for (int32_t c : state.unique_assignment) w.PutI32(c);
  EncodeMetricBag(state.counters, w);
  return w.Take();
}

Result<SupportSetsPhaseState> DecodeSupportSetsState(
    const std::string& payload) {
  BlobReader r(payload, "support-sets state");
  SupportSetsPhaseState state;
  const uint64_t k = r.GetU64();
  if (k > payload.size()) {
    return Status::IOError("support-sets state: implausible cluster count");
  }
  state.support_sets.resize(static_cast<size_t>(k));
  for (uint64_t c = 0; c < k && r.status().ok(); ++c) {
    const uint64_t size = r.GetU64();
    if (size > payload.size()) {
      return Status::IOError("support-sets state: implausible set size");
    }
    state.support_sets[c].reserve(static_cast<size_t>(size));
    for (uint64_t i = 0; i < size && r.status().ok(); ++i) {
      state.support_sets[c].push_back(r.GetU32());
    }
  }
  const uint64_t n = r.GetU64();
  if (n > payload.size()) {
    return Status::IOError("support-sets state: implausible point count");
  }
  state.unique_assignment.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) {
    state.unique_assignment.push_back(r.GetI32());
  }
  Result<MetricBag> counters = DecodeMetricBag(r);
  if (!counters.ok()) return counters.status();
  state.counters = std::move(counters).value();
  P3C_RETURN_NOT_OK(r.Finish());
  return state;
}

std::string EncodeGmmState(const GmmPhaseState& state) {
  BlobWriter w;
  w.PutU64(state.model.arel.size());
  for (size_t attr : state.model.arel) w.PutU64(attr);
  w.PutU64(state.model.components.size());
  for (const core::GaussianComponent& comp : state.model.components) {
    w.PutU64(comp.mean.size());
    for (double v : comp.mean) w.PutDouble(v);
    w.PutU64(comp.cov.rows());
    w.PutU64(comp.cov.cols());
    for (double v : comp.cov.data()) w.PutDouble(v);
    w.PutDouble(comp.weight);
  }
  EncodeMetricBag(state.counters, w);
  return w.Take();
}

Result<GmmPhaseState> DecodeGmmState(const std::string& payload) {
  BlobReader r(payload, "em-refinement state");
  GmmPhaseState state;
  const uint64_t arel_size = r.GetU64();
  if (arel_size > payload.size()) {
    return Status::IOError("em-refinement state: implausible Arel size");
  }
  for (uint64_t i = 0; i < arel_size && r.status().ok(); ++i) {
    state.model.arel.push_back(static_cast<size_t>(r.GetU64()));
  }
  const uint64_t k = r.GetU64();
  if (k > payload.size()) {
    return Status::IOError("em-refinement state: implausible component count");
  }
  for (uint64_t c = 0; c < k && r.status().ok(); ++c) {
    core::GaussianComponent comp;
    const uint64_t dim = r.GetU64();
    if (dim > payload.size()) {
      return Status::IOError("em-refinement state: implausible mean size");
    }
    comp.mean.reserve(static_cast<size_t>(dim));
    for (uint64_t j = 0; j < dim && r.status().ok(); ++j) {
      comp.mean.push_back(r.GetDouble());
    }
    const uint64_t rows = r.GetU64();
    const uint64_t cols = r.GetU64();
    if (!r.status().ok()) break;
    if (rows > payload.size() || cols > payload.size() ||
        (rows != 0 && rows * cols / rows != cols) ||
        rows * cols * sizeof(double) > payload.size()) {
      return Status::IOError(
          "em-refinement state: implausible covariance shape");
    }
    linalg::Matrix cov(static_cast<size_t>(rows), static_cast<size_t>(cols));
    for (double& v : cov.data()) v = r.GetDouble();
    comp.cov = std::move(cov);
    comp.weight = r.GetDouble();
    state.model.components.push_back(std::move(comp));
  }
  Result<MetricBag> counters = DecodeMetricBag(r);
  if (!counters.ok()) return counters.status();
  state.counters = std::move(counters).value();
  P3C_RETURN_NOT_OK(r.Finish());
  return state;
}

std::string EncodeMembershipState(const MembershipPhaseState& state) {
  BlobWriter w;
  w.PutU64(state.membership.size());
  for (int32_t c : state.membership) w.PutI32(c);
  EncodeMetricBag(state.counters, w);
  return w.Take();
}

Result<MembershipPhaseState> DecodeMembershipState(
    const std::string& payload) {
  BlobReader r(payload, "outlier-detection state");
  MembershipPhaseState state;
  const uint64_t n = r.GetU64();
  if (n > payload.size()) {
    return Status::IOError(
        "outlier-detection state: implausible membership size");
  }
  state.membership.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) {
    state.membership.push_back(r.GetI32());
  }
  Result<MetricBag> counters = DecodeMetricBag(r);
  if (!counters.ok()) return counters.status();
  state.counters = std::move(counters).value();
  P3C_RETURN_NOT_OK(r.Finish());
  return state;
}

// ---- CheckpointManager -----------------------------------------------------

CheckpointManager::CheckpointManager(Options options)
    : options_(std::move(options)) {}

std::string CheckpointManager::ManifestPath() const {
  return options_.dir + "/" + kManifestFilename;
}

void CheckpointManager::Discard(const std::string& reason) {
  P3C_LOG(kWarning) << "discarding checkpoint in '" << options_.dir
                   << "' and starting fresh: " << reason;
  if (options_.driver_metrics != nullptr) {
    options_.driver_metrics->Increment(kCorruptCounter);
  }
  phases_.clear();
}

void CheckpointManager::Initialize() {
  phases_.clear();
  if (!enabled()) return;
  Status mkdir_status = MakeDirectories(options_.dir);
  if (!mkdir_status.ok()) {
    // Leave the manager "fresh"; the first CommitPhase will surface the
    // unusable directory as a real error.
    P3C_LOG(kWarning) << mkdir_status.ToString();
    return;
  }
  const std::string manifest_path = ManifestPath();
  if (!FileExists(manifest_path)) {
    P3C_LOG(kInfo) << "no checkpoint manifest in '" << options_.dir
                  << "'; starting fresh";
    return;
  }
  Result<std::string> blob =
      data::ReadBlobFile(manifest_path, kManifestBlobKind);
  if (!blob.ok()) {
    Discard("manifest unreadable: " + blob.status().ToString());
    return;
  }
  BlobReader r(*blob, manifest_path);
  const uint32_t version = r.GetU32();
  const uint64_t fingerprint = r.GetU64();
  const uint64_t params_hash = r.GetU64();
  const uint64_t num_phases = r.GetU64();
  if (!r.status().ok()) {
    Discard("manifest truncated: " + r.status().ToString());
    return;
  }
  if (version != kCheckpointFormatVersion) {
    Discard(StringPrintf(
        "checkpoint format version skew (manifest %u, this build %u)",
        version, kCheckpointFormatVersion));
    return;
  }
  if (fingerprint != options_.dataset_fingerprint) {
    Discard(StringPrintf(
        "dataset fingerprint mismatch (manifest %016llx, this run %016llx) — "
        "checkpoint belongs to different data",
        static_cast<unsigned long long>(fingerprint),
        static_cast<unsigned long long>(options_.dataset_fingerprint)));
    return;
  }
  if (params_hash != options_.params_hash) {
    Discard(StringPrintf(
        "parameter hash mismatch (manifest %016llx, this run %016llx) — "
        "checkpoint belongs to a different configuration",
        static_cast<unsigned long long>(params_hash),
        static_cast<unsigned long long>(options_.params_hash)));
    return;
  }
  if (num_phases > kMaxPhases) {
    Discard(StringPrintf("manifest lists an implausible %llu phases",
                         static_cast<unsigned long long>(num_phases)));
    return;
  }
  std::vector<PhaseEntry> loaded;
  for (uint64_t i = 0; i < num_phases; ++i) {
    PhaseEntry entry;
    entry.name = r.GetString();
    entry.filename = r.GetString();
    entry.payload_checksum = r.GetU64();
    if (!r.status().ok()) {
      Discard("manifest truncated: " + r.status().ToString());
      return;
    }
    if (entry.name.empty() || entry.filename.empty() ||
        entry.filename.find('/') != std::string::npos) {
      Discard(StringPrintf("manifest entry %llu is malformed",
                           static_cast<unsigned long long>(i)));
      return;
    }
    const std::string path = options_.dir + "/" + entry.filename;
    Result<std::string> state_blob =
        data::ReadBlobFile(path, kPhaseBlobKind);
    if (!state_blob.ok()) {
      Discard("phase state unreadable: " + state_blob.status().ToString());
      return;
    }
    const uint64_t checksum =
        data::Fnv1a64(state_blob->data(), state_blob->size());
    if (checksum != entry.payload_checksum) {
      Discard(StringPrintf(
          "phase file '%s' does not match the manifest (checksum %016llx vs "
          "recorded %016llx) — stale file from another run",
          entry.filename.c_str(), static_cast<unsigned long long>(checksum),
          static_cast<unsigned long long>(entry.payload_checksum)));
      return;
    }
    BlobReader state_reader(*state_blob, path);
    const uint32_t state_version = state_reader.GetU32();
    const uint64_t state_index = state_reader.GetU64();
    const std::string state_name = state_reader.GetString();
    const uint64_t state_fingerprint = state_reader.GetU64();
    const uint64_t state_params = state_reader.GetU64();
    entry.payload = state_reader.GetString();
    Status state_status = state_reader.Finish();
    if (!state_status.ok()) {
      Discard("phase state malformed: " + state_status.ToString());
      return;
    }
    if (state_version != kCheckpointFormatVersion || state_index != i ||
        state_name != entry.name ||
        state_fingerprint != options_.dataset_fingerprint ||
        state_params != options_.params_hash) {
      Discard(StringPrintf(
          "phase file '%s' header disagrees with the manifest chain",
          entry.filename.c_str()));
      return;
    }
    loaded.push_back(std::move(entry));
  }
  Status trailing = r.Finish();
  if (!trailing.ok()) {
    Discard("manifest malformed: " + trailing.ToString());
    return;
  }
  phases_ = std::move(loaded);
  if (!phases_.empty()) {
    P3C_LOG(kInfo) << "checkpoint in '" << options_.dir << "' is valid: "
                  << phases_.size() << " completed phase(s), last '"
                  << phases_.back().name << "'";
  }
}

Status CheckpointManager::WriteManifest() {
  BlobWriter w;
  w.PutU32(kCheckpointFormatVersion);
  w.PutU64(options_.dataset_fingerprint);
  w.PutU64(options_.params_hash);
  w.PutU64(phases_.size());
  for (const PhaseEntry& entry : phases_) {
    w.PutString(entry.name);
    w.PutString(entry.filename);
    w.PutU64(entry.payload_checksum);
  }
  return data::WriteBlobFile(ManifestPath(), kManifestBlobKind, w.Take());
}

Status CheckpointManager::CommitPhase(const std::string& name,
                                      const std::string& payload) {
  if (!enabled()) return Status::OK();
  TraceSpan span(Tracer::Global().enabled()
                     ? std::string("checkpoint:write:") + name
                     : std::string());
  Stopwatch watch;
  const size_t index = phases_.size();
  PhaseEntry entry;
  entry.name = name;
  entry.filename = StringPrintf("phase-%zu-%s.p3ck", index, name.c_str());
  BlobWriter state;
  state.PutU32(kCheckpointFormatVersion);
  state.PutU64(index);
  state.PutString(name);
  state.PutU64(options_.dataset_fingerprint);
  state.PutU64(options_.params_hash);
  state.PutString(payload);
  std::string state_blob = state.Take();
  entry.payload_checksum =
      data::Fnv1a64(state_blob.data(), state_blob.size());
  entry.payload = payload;
  P3C_RETURN_NOT_OK(data::WriteBlobFile(options_.dir + "/" + entry.filename,
                                        kPhaseBlobKind, state_blob));
  phases_.push_back(std::move(entry));
  // The manifest rename is the commit point: a crash before it leaves
  // the previous manifest (which simply does not list the new file), a
  // crash after it leaves a fully committed phase.
  Status manifest_status = WriteManifest();
  if (!manifest_status.ok()) {
    phases_.pop_back();
    return manifest_status;
  }
  if (options_.driver_metrics != nullptr) {
    options_.driver_metrics->SetGauge(
        "checkpoint.write_seconds." + name, watch.ElapsedSeconds());
  }
  return Status::OK();
}

}  // namespace p3c::mr
