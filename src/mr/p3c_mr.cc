#include "src/mr/p3c_mr.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>

#include "src/common/logging.h"
#include "src/common/resource.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/common/trace.h"
#include "src/core/attribute_inspection.h"
#include "src/core/gmm.h"
#include "src/core/relevant_intervals.h"
#include "src/core/rssc.h"
#include "src/linalg/cholesky.h"
#include "src/mr/checkpoint.h"
#include "src/mr/jobs.h"
#include "src/stats/chi_squared.h"

namespace p3c::mr {

bool IsRetryableJobFailure(const Status& status) {
  // kDeadlineExceeded: a task was killed for running past its wall-clock
  // deadline and exhausted its attempts — slowness is transient (a loaded
  // machine, a stuck disk), so the job is worth one more run. The phase
  // budget, not the retry policy, bounds how long the pipeline keeps
  // trying.
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kDeadlineExceeded;
}

namespace {

/// Runs one MR job under the pipeline's job-retry policy: retryable
/// failures re-run the whole job (failed jobs leave no side effects, so
/// this is safe), fatal ones and exhausted policies surface a Status
/// naming the pipeline phase and the attempt count on top of the
/// engine's job/task detail. A phase that has already consumed
/// JobRetryPolicy::phase_budget_seconds of wall-clock time stops
/// retrying and fails with a phase-tagged kDeadlineExceeded — a
/// pathological phase (every attempt deadline-killed, every job re-run)
/// degrades into a bounded, explained failure instead of wedging the
/// caller.
/// RAII memory-phase window on the global MemoryTracker. Repeated
/// windows with the same name (job retries, the EM loop) max-merge into
/// one mem.phase.<name>.peak_bytes gauge; inactive (tracker off) it is
/// two relaxed loads.
class PhaseMemWindow {
 public:
  explicit PhaseMemWindow(const char* phase) {
    if (resource::MemoryTracker::Global().enabled()) {
      active_ = true;
      resource::MemoryTracker::Global().BeginPhase(phase);
    }
  }
  ~PhaseMemWindow() {
    if (active_) resource::MemoryTracker::Global().EndPhase();
  }
  PhaseMemWindow(const PhaseMemWindow&) = delete;
  PhaseMemWindow& operator=(const PhaseMemWindow&) = delete;

 private:
  bool active_ = false;
};

template <typename Fn>
auto RunPipelineJob(const JobRetryPolicy& policy, const char* phase,
                    Fn&& fn) -> decltype(fn()) {
  // Phase span: the middle level of the trace hierarchy (pipeline →
  // phase → job → task attempt). One span per job run, so a job-level
  // retry shows as a second phase slice with the failure instant
  // between them.
  TraceSpan phase_span(std::string("phase:") + phase);
  PhaseMemWindow mem_window(phase);
  Stopwatch budget_watch;
  const size_t max_attempts = std::max<size_t>(1, policy.max_job_attempts);
  Status last;
  size_t attempts = 0;
  for (; attempts < max_attempts; ++attempts) {
    if (attempts > 0 && policy.backoff_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(policy.backoff_seconds));
    }
    auto result = fn();
    if (result.ok()) return result;
    last = result.status();
    if (Tracer::Global().enabled()) {
      Tracer::Global().RecordInstant(
          StringPrintf("job-failed (phase %s)", phase),
          StringPrintf("{\"error\": \"%s\"}",
                       JsonEscape(last.message()).c_str()));
    }
    if (!IsRetryableJobFailure(last)) {
      ++attempts;
      break;
    }
    if (policy.phase_budget_seconds > 0.0 &&
        budget_watch.ElapsedSeconds() >= policy.phase_budget_seconds) {
      ++attempts;
      return Status::DeadlineExceeded(StringPrintf(
          "P3C+-MR phase '%s' exceeded its %.3fs wall-clock budget after "
          "%zu job attempt(s); last failure: %s",
          phase, policy.phase_budget_seconds, attempts,
          last.message().c_str()));
    }
  }
  return Status(last.code(),
                StringPrintf("P3C+-MR phase '%s' failed after %zu job "
                             "attempt(s): %s",
                             phase, attempts, last.message().c_str()));
}

/// Hard membership by cluster-core containment: a point contributes
/// weight 1 to every core whose support set contains it (EM init round 1,
/// §5.4).
class CoreMembership : public MembershipFn {
 public:
  CoreMembership(const data::Dataset& dataset,
                 const std::vector<core::Signature>& signatures)
      : dataset_(dataset), rssc_(signatures), k_(signatures.size()) {}

  void Contributions(
      data::PointId point, const linalg::Vector& x,
      std::vector<std::pair<uint32_t, double>>& out) const override {
    (void)x;
    thread_local std::vector<uint64_t> bits;
    thread_local std::vector<uint32_t> ids;
    rssc_.Match(dataset_.Row(point), bits);
    ids.clear();
    core::Rssc::BitsToIds(bits, k_, ids);
    for (uint32_t id : ids) out.emplace_back(id, 1.0);
  }

  const core::Rssc& rssc() const { return rssc_; }

 private:
  const data::Dataset& dataset_;
  core::Rssc rssc_;
  size_t k_;
};

/// EM init round 2 (§5.4): support-set members as before, and points
/// outside every support set attach to the Mahalanobis-nearest core.
class OrphanAssigningMembership : public MembershipFn {
 public:
  OrphanAssigningMembership(const CoreMembership& cores,
                            const core::GmmEvaluator& evaluator)
      : cores_(cores), evaluator_(evaluator) {}

  void Contributions(
      data::PointId point, const linalg::Vector& x,
      std::vector<std::pair<uint32_t, double>>& out) const override {
    const size_t before = out.size();
    cores_.Contributions(point, x, out);
    if (out.size() != before) return;
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < evaluator_.num_components(); ++c) {
      const double dist = evaluator_.MahalanobisSquared(c, x);
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    out.emplace_back(static_cast<uint32_t>(best), 1.0);
  }

 private:
  const CoreMembership& cores_;
  const core::GmmEvaluator& evaluator_;
};

/// Soft EM membership: posterior responsibilities (E step).
class SoftMembership : public MembershipFn {
 public:
  explicit SoftMembership(const core::GmmEvaluator& evaluator)
      : evaluator_(evaluator) {}

  void Contributions(
      data::PointId point, const linalg::Vector& x,
      std::vector<std::pair<uint32_t, double>>& out) const override {
    (void)point;
    thread_local std::vector<double> r;
    evaluator_.Responsibilities(x, r);
    for (size_t c = 0; c < r.size(); ++c) {
      if (r[c] > 1e-12) out.emplace_back(static_cast<uint32_t>(c), r[c]);
    }
  }

  double LogLikelihood(const linalg::Vector& x) const override {
    return evaluator_.LogLikelihood(x);
  }

 private:
  const core::GmmEvaluator& evaluator_;
};

/// MVB in-ball membership: the point's argmax-posterior cluster, kept
/// only when the point lies inside that cluster's ball.
class BallMembership : public MembershipFn {
 public:
  BallMembership(const core::GmmEvaluator& evaluator,
                 const std::vector<MvbBall>& balls)
      : evaluator_(evaluator), balls_(balls) {}

  void Contributions(
      data::PointId point, const linalg::Vector& x,
      std::vector<std::pair<uint32_t, double>>& out) const override {
    (void)point;
    const size_t c = evaluator_.HardAssign(x);
    const MvbBall& ball = balls_[c];
    if (ball.center.empty()) return;
    if (std::sqrt(linalg::SquaredDistance(x, ball.center)) <= ball.radius) {
      out.emplace_back(static_cast<uint32_t>(c), 1.0);
    }
  }

 private:
  const core::GmmEvaluator& evaluator_;
  const std::vector<MvbBall>& balls_;
};

/// Turns moment/covariance job sums into component parameters using the
/// paper's unbiased weighted covariance Sigma_C = wC / (wC^2 - wC2) *
/// sum w (x - mu)(x - mu)^T (§5.4); keeps the previous values when a
/// component received (almost) no mass.
void UpdateModel(const MomentSums& moments,
                 const std::vector<linalg::Matrix>& cov_sums,
                 core::GmmModel& model) {
  const size_t k = model.num_components();
  const size_t dim = model.dim();
  double total_w = 0.0;
  for (double w : moments.w) total_w += w;
  for (size_t c = 0; c < k; ++c) {
    core::GaussianComponent& comp = model.components[c];
    const double denom = moments.w[c] * moments.w[c] - moments.w2[c];
    if (moments.w[c] < 1e-9 || denom <= 1e-12) continue;  // keep previous
    comp.weight = total_w > 0.0 ? moments.w[c] / total_w
                                : 1.0 / static_cast<double>(k);
    for (size_t j = 0; j < dim; ++j) {
      comp.mean[j] = moments.lsum[c][j] / moments.w[c];
    }
    comp.cov = cov_sums[c].Scale(moments.w[c] / denom);
  }
}

std::vector<linalg::Vector> Means(const core::GmmModel& model) {
  std::vector<linalg::Vector> means;
  means.reserve(model.num_components());
  for (const auto& comp : model.components) means.push_back(comp.mean);
  return means;
}

Result<std::vector<linalg::Cholesky>> FactorizeAll(
    const std::vector<linalg::Matrix>& covs, double ridge) {
  std::vector<linalg::Cholesky> factors;
  factors.reserve(covs.size());
  for (const linalg::Matrix& cov : covs) {
    linalg::Matrix work = cov;
    Result<linalg::Cholesky> chol = linalg::Cholesky::Factorize(work);
    double eps = ridge;
    while (!chol.ok() && eps < 1.0) {
      work.AddToDiagonal(eps);
      chol = linalg::Cholesky::Factorize(work);
      eps *= 10.0;
    }
    if (!chol.ok()) {
      return Status::Internal("covariance not factorizable");
    }
    factors.push_back(std::move(chol).value());
  }
  return factors;
}

/// Decoded driver state of every phase a valid checkpoint completed.
/// All payloads are decoded up front: a single undecodable phase
/// discards the whole checkpoint (DiscardAll), so resume never mixes
/// restored and stale state.
struct ResumeState {
  std::optional<HistogramPhaseState> histogram;
  std::optional<CoresPhaseState> cores;
  std::optional<SupportSetsPhaseState> support_sets;  // light pipeline
  std::optional<GmmPhaseState> gmm;                   // full pipeline
  std::optional<MembershipPhaseState> od;             // full pipeline
};

/// Phase names in pipeline order. The parameter hash pins `light`, so a
/// validated manifest always belongs to the matching variant; the name
/// check below is defense in depth.
std::vector<std::string> ExpectedPhaseNames(bool light) {
  if (light) return {"histogram", "cluster-cores", "support-sets"};
  return {"histogram", "cluster-cores", "em-refinement",
          "outlier-detection"};
}

ResumeState DecodeResumeState(CheckpointManager& ckpt, bool light,
                              size_t num_points, size_t num_dims) {
  ResumeState state;
  const std::vector<std::string> expected = ExpectedPhaseNames(light);
  if (ckpt.num_completed() > expected.size()) {
    ckpt.DiscardAll(StringPrintf(
        "manifest lists %zu phases but the pipeline has %zu",
        ckpt.num_completed(), expected.size()));
    return {};
  }
  for (size_t i = 0; i < ckpt.num_completed(); ++i) {
    const std::string& name = ckpt.PhaseName(i);
    if (name != expected[i]) {
      ckpt.DiscardAll(StringPrintf(
          "phase %zu is '%s' where '%s' was expected", i, name.c_str(),
          expected[i].c_str()));
      return {};
    }
    const std::string& payload = ckpt.PhasePayload(i);
    Status decode_status;
    if (name == "histogram") {
      auto decoded = DecodeHistogramState(payload);
      if (decoded.ok()) {
        state.histogram = std::move(decoded).value();
      } else {
        decode_status = decoded.status();
      }
    } else if (name == "cluster-cores") {
      auto decoded = DecodeCoresState(payload);
      if (decoded.ok()) {
        state.cores = std::move(decoded).value();
      } else {
        decode_status = decoded.status();
      }
    } else if (name == "support-sets") {
      auto decoded = DecodeSupportSetsState(payload);
      if (decoded.ok()) {
        state.support_sets = std::move(decoded).value();
      } else {
        decode_status = decoded.status();
      }
    } else if (name == "em-refinement") {
      auto decoded = DecodeGmmState(payload);
      if (decoded.ok()) {
        state.gmm = std::move(decoded).value();
      } else {
        decode_status = decoded.status();
      }
    } else {  // "outlier-detection"
      auto decoded = DecodeMembershipState(payload);
      if (decoded.ok()) {
        state.od = std::move(decoded).value();
      } else {
        decode_status = decoded.status();
      }
    }
    if (!decode_status.ok()) {
      ckpt.DiscardAll(StringPrintf("phase '%s' payload undecodable: %s",
                                   name.c_str(),
                                   decode_status.ToString().c_str()));
      return {};
    }
  }
  // Cross-phase consistency: every restored structure must agree with
  // the dataset shape and with the other phases. The checksums already
  // reject accidental corruption; these checks reject a checkpoint that
  // is internally coherent but wrong for this run.
  std::string inconsistency;
  if (state.histogram && state.histogram->histograms.size() != num_dims) {
    inconsistency = "histogram count disagrees with the dataset dims";
  }
  const size_t k = state.cores ? state.cores->cores.size() : 0;
  if (inconsistency.empty() && state.support_sets &&
      (state.support_sets->unique_assignment.size() != num_points ||
       state.support_sets->support_sets.size() != k)) {
    inconsistency = "support-sets state disagrees with dataset/cores";
  }
  if (inconsistency.empty() && state.gmm && state.cores &&
      (state.gmm->model.components.size() != k ||
       state.gmm->model.arel !=
           core::RelevantAttributeUnion(state.cores->cores))) {
    inconsistency = "EM model disagrees with the restored cores";
  }
  if (inconsistency.empty() && state.od &&
      state.od->membership.size() != num_points) {
    inconsistency = "membership size disagrees with the dataset";
  }
  if (!inconsistency.empty()) {
    ckpt.DiscardAll(inconsistency);
    return {};
  }
  return state;
}

}  // namespace

P3CMR::P3CMR(P3CMROptions options) : options_(std::move(options)) {
  options_.runner.metrics = &metrics_;
  options_.runner.counters = &counters_;
  runner_ = std::make_unique<LocalRunner>(options_.runner);
}

Result<core::ClusteringResult> P3CMR::Cluster(const data::Dataset& dataset) {
  Stopwatch watch;
  TraceSpan pipeline_span(
      options_.params.light ? "pipeline:p3c+-mr-light" : "pipeline:p3c+-mr",
      Tracer::Global().enabled()
          ? StringPrintf("{\"points\": %zu, \"dims\": %zu}",
                         dataset.num_points(), dataset.num_dims())
          : std::string());
  metrics_.Clear();
  counters_.Clear();
  driver_metrics_.Clear();
  // Memory run boundary: clear peaks/phase windows from any previous
  // run, and export the run's gauges into driver_metrics_ on every exit
  // path (success and failure alike — a failed run's peaks still matter).
  if (resource::MemoryTracker::Global().enabled()) {
    resource::MemoryTracker::Global().ResetRun();
  }
  struct GaugeExportOnExit {
    MetricBag* bag;
    LocalRunner* runner;
    ~GaugeExportOnExit() {
      if (resource::MemoryTracker::Global().enabled()) {
        resource::MemoryTracker::Global().ExportGauges(bag);
      }
      // Worker-backend observability (DESIGN.md §16): spawn/respawn/
      // kill counters and the peak worker RSS gauge land next to the
      // checkpoint and memory bookkeeping — driver-side only, never in
      // the deterministic job counters. Empty on the in-process
      // backend.
      bag->MergeFrom(runner->SnapshotWorkerMetrics());
    }
  } gauge_export{&driver_metrics_, runner_.get()};
  if (dataset.num_points() == 0 || dataset.num_dims() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (!dataset.IsNormalized()) {
    return Status::InvalidArgument(
        "dataset must be normalized to [0, 1]; call NormalizeMinMax first");
  }
  const core::P3CParams& params = options_.params;
  if (!params.light && params.outlier == core::OutlierMode::kMCD) {
    return Status::NotImplemented(
        "OutlierMode::kMCD is serial-only (its concentration steps are not "
        "record-parallel); use core::P3CPipeline, or kMVB here");
  }
  LocalRunner& runner = *runner_;
  const JobRetryPolicy& retry = options_.retry;
  core::ClusteringResult result;

  // ---- 0. Checkpoint scan (DESIGN.md §13) ---------------------------------
  CheckpointManager::Options ckpt_options;
  ckpt_options.dir = options_.checkpoint_dir;
  if (!options_.checkpoint_dir.empty()) {
    ckpt_options.dataset_fingerprint = DatasetFingerprint(dataset);
    ckpt_options.params_hash = ParamsHash(params);
  }
  ckpt_options.driver_metrics = &driver_metrics_;
  CheckpointManager ckpt(ckpt_options);
  ckpt.Initialize();
  ResumeState resume = DecodeResumeState(ckpt, params.light,
                                         dataset.num_points(),
                                         dataset.num_dims());
  const size_t completed = ckpt.num_completed();
  if (completed > 0) {
    // Replay the framework-counter snapshot persisted with the last
    // completed phase, so the skipped phases' counters are present and
    // the final counter JSON matches an uninterrupted run's byte for
    // byte. The resume bookkeeping itself goes to driver_metrics_ only.
    const std::string& last = ckpt.PhaseName(completed - 1);
    const MetricBag* snapshot = nullptr;
    if (last == "histogram") snapshot = &resume.histogram->counters;
    if (last == "cluster-cores") snapshot = &resume.cores->counters;
    if (last == "support-sets") snapshot = &resume.support_sets->counters;
    if (last == "em-refinement") snapshot = &resume.gmm->counters;
    if (last == "outlier-detection") snapshot = &resume.od->counters;
    if (snapshot != nullptr) counters_.MergeBag(*snapshot);
    driver_metrics_.SetGauge("checkpoint.resumed_from_phase",
                             static_cast<double>(completed));
    if (Tracer::Global().enabled()) {
      Tracer::Global().RecordInstant(
          "checkpoint-resume",
          StringPrintf("{\"completed_phases\": %zu, \"last_phase\": \"%s\"}",
                       completed, last.c_str()));
    }
    P3C_LOG(kInfo) << "resuming from checkpoint: skipping " << completed
                   << " completed phase(s), continuing after '" << last
                   << "'";
  }

  // Commits one finished phase and then gives the fault injector its
  // crash point: the checkpoint is durable when the hook fires, so an
  // injected failure here models a driver killed at the phase boundary.
  auto commit_phase = [&](const char* name,
                          const std::string& payload) -> Status {
    P3C_RETURN_NOT_OK(ckpt.CommitPhase(name, payload));
    if (options_.runner.fault_injector != nullptr) {
      const std::string phase_name(name);
      P3C_RETURN_NOT_OK(options_.runner.fault_injector->OnPhaseCommit(
          PhaseCommit{phase_name, ckpt.num_completed() - 1}));
    }
    return Status::OK();
  };
  // Cooperative shutdown: between phases the driver's own token is the
  // cancellation authority (task-level tokens stop individual attempts;
  // this stops the pipeline). Checked right after each commit, so a
  // SIGTERM'd run exits with every finished phase already durable.
  auto check_cancel = [&](const char* after_phase) -> Status {
    if (!options_.cancel.cancelled()) return Status::OK();
    return Status::Cancelled(StringPrintf(
        "pipeline cancelled after phase '%s'%s", after_phase,
        ckpt.enabled() ? "; completed phases are checkpointed and the run "
                         "can resume from the checkpoint directory"
                       : ""));
  };
  P3C_RETURN_NOT_OK(check_cancel("<none>"));

  // ---- 1. Histogram job (§5.1) -------------------------------------------
  std::vector<stats::Histogram> histograms;
  if (completed >= 1) {
    histograms = std::move(resume.histogram->histograms);
  } else {
    auto histograms_result = RunPipelineJob(retry, "histogram", [&] {
      return RunHistogramJob(runner, dataset, params.binning);
    });
    if (!histograms_result.ok()) return histograms_result.status();
    histograms = std::move(histograms_result).value();
    if (ckpt.enabled()) {
      HistogramPhaseState state;
      state.histograms = histograms;
      state.counters = counters_.Snapshot();
      P3C_RETURN_NOT_OK(
          commit_phase("histogram", EncodeHistogramState(state)));
    }
    P3C_RETURN_NOT_OK(check_cancel("histogram"));
  }

  // ---- 2. Relevant intervals — driver-side, "computationally cheap" (§5.2)
  const std::vector<core::Interval> relevant =
      core::FindAllRelevantIntervals(histograms, params.alpha_chi2);

  // ---- 3. Cluster-core generation with support jobs (§5.3) ----------------
  // core::SupportCountFn cannot carry a Status, so the counter parks the
  // first unrecoverable job failure here and returns zero supports; the
  // driver checks after each counter-driven stage. Zero supports prove
  // nothing, so no wrong cores are derived from a failed job. The
  // cancellation poll makes mid-generation SIGTERM stop at the next
  // batch instead of grinding through the remaining proving rounds.
  Status support_job_error;
  core::SupportCountFn counter =
      [&](const std::vector<core::Signature>& sigs) {
        if (options_.cancel.cancelled()) {
          if (support_job_error.ok()) {
            support_job_error =
                Status::Cancelled("pipeline cancelled during support counting");
          }
          return std::vector<uint64_t>(sigs.size(), 0);
        }
        auto supports = RunPipelineJob(retry, "support-count", [&] {
          return RunSupportJob(runner, dataset, sigs);
        });
        if (!supports.ok()) {
          if (support_job_error.ok()) support_job_error = supports.status();
          return std::vector<uint64_t>(sigs.size(), 0);
        }
        return std::move(supports).value();
      };
  // The whole candidate-generation / support-counting / core-detection
  // block checkpoints as one "cluster-cores" phase: its driver state
  // (the proven cores and their stats) is small, while mid-generation
  // state (the A-priori lattice frontier) is not worth persisting.
  core::CoreDetectionResult detection;
  if (completed >= 2) {
    detection.stats = resume.cores->stats;
    detection.cores = std::move(resume.cores->cores);
  } else {
    detection = core::GenerateClusterCores(
        relevant, dataset.num_points(), params, counter, &runner.pool());
    if (!support_job_error.ok()) return support_job_error;
    if (ckpt.enabled()) {
      CoresPhaseState state;
      state.stats = detection.stats;
      state.cores = detection.cores;
      state.counters = counters_.Snapshot();
      P3C_RETURN_NOT_OK(
          commit_phase("cluster-cores", EncodeCoresState(state)));
    }
    P3C_RETURN_NOT_OK(check_cancel("cluster-cores"));
  }
  result.core_stats = detection.stats;
  result.cores = detection.cores;
  if (detection.cores.empty()) {
    result.seconds = watch.ElapsedSeconds();
    return result;
  }
  result.arel = core::RelevantAttributeUnion(detection.cores);

  const size_t k = detection.cores.size();
  std::vector<core::Signature> signatures;
  signatures.reserve(k);
  for (const auto& core : detection.cores) signatures.push_back(core.signature);

  std::vector<int32_t> membership;  // per point: cluster or negative
  std::vector<std::vector<data::PointId>> reported_points(k);

  if (params.light) {
    // ---- Light path (§6) --------------------------------------------------
    if (completed >= 3) {
      reported_points = std::move(resume.support_sets->support_sets);
      membership = std::move(resume.support_sets->unique_assignment);
    } else {
      auto sets = RunPipelineJob(retry, "support-sets", [&] {
        return RunSupportSetJob(runner, dataset, signatures);
      });
      if (!sets.ok()) return sets.status();
      reported_points = std::move(sets->support_sets);
      membership = std::move(sets->unique_assignment);
      if (ckpt.enabled()) {
        SupportSetsPhaseState state;
        state.support_sets = reported_points;
        state.unique_assignment = membership;
        state.counters = counters_.Snapshot();
        P3C_RETURN_NOT_OK(
            commit_phase("support-sets", EncodeSupportSetsState(state)));
      }
      P3C_RETURN_NOT_OK(check_cancel("support-sets"));
    }
    // m': multi-core points carry -2 and are excluded from histograms and
    // tightening by the jobs' `c < 0` guard.
  } else if (completed >= 4) {
    // ---- Full path, both refinement phases checkpointed -------------------
    // The model itself is no longer needed: attribute inspection and
    // tightening run on the membership alone.
    membership = std::move(resume.od->membership);
    for (size_t i = 0; i < membership.size(); ++i) {
      if (membership[i] >= 0) {
        reported_points[static_cast<size_t>(membership[i])].push_back(
            static_cast<data::PointId>(i));
      }
    }
  } else {
    core::GmmModel model;
    const size_t dim = result.arel.size();
    if (completed >= 3) {
      // Resume: 'em-refinement' persisted the converged model; outlier
      // detection below runs live.
      model = std::move(resume.gmm->model);
    } else {
      // ---- EM initialization: two rounds of two jobs (§5.4) --------------
      model.arel = result.arel;
      model.components.assign(k,
                              core::GaussianComponent{
                                  linalg::Vector(dim, 0.5),
                                  linalg::Matrix::Identity(dim).Scale(1e-2),
                                  1.0 / static_cast<double>(k)});

      CoreMembership core_membership(dataset, signatures);
      auto m1_result = RunPipelineJob(retry, "em-init", [&] {
        return RunMomentJob(runner, dataset, model, core_membership,
                            "em-init-1a");
      });
      if (!m1_result.ok()) return m1_result.status();
      MomentSums m1 = std::move(m1_result).value();
      // Interim means for the covariance job.
      {
        core::GmmModel tmp = model;
        for (size_t c = 0; c < k; ++c) {
          if (m1.w[c] < 1e-9) continue;
          for (size_t j = 0; j < dim; ++j) {
            tmp.components[c].mean[j] = m1.lsum[c][j] / m1.w[c];
          }
        }
        auto cov1 = RunPipelineJob(retry, "em-init", [&] {
          return RunCovarianceJob(runner, dataset, tmp, core_membership,
                                  Means(tmp), "em-init-1b");
        });
        if (!cov1.ok()) return cov1.status();
        UpdateModel(m1, *cov1, model);
        for (size_t c = 0; c < k; ++c) {
          if (m1.w[c] >= 1e-9) {
            model.components[c].mean = tmp.components[c].mean;
          }
        }
      }
      Result<core::GmmEvaluator> eval1 =
          core::GmmEvaluator::Make(model, params.covariance_ridge);
      if (!eval1.ok()) return eval1.status();
      OrphanAssigningMembership full_membership(core_membership, *eval1);
      auto m2_result = RunPipelineJob(retry, "em-init", [&] {
        return RunMomentJob(runner, dataset, model, full_membership,
                            "em-init-2a");
      });
      if (!m2_result.ok()) return m2_result.status();
      MomentSums m2 = std::move(m2_result).value();
      {
        core::GmmModel tmp = model;
        for (size_t c = 0; c < k; ++c) {
          if (m2.w[c] < 1e-9) continue;
          for (size_t j = 0; j < dim; ++j) {
            tmp.components[c].mean[j] = m2.lsum[c][j] / m2.w[c];
          }
        }
        auto cov2 = RunPipelineJob(retry, "em-init", [&] {
          return RunCovarianceJob(runner, dataset, tmp, full_membership,
                                  Means(tmp), "em-init-2b");
        });
        if (!cov2.ok()) return cov2.status();
        UpdateModel(m2, *cov2, model);
        for (size_t c = 0; c < k; ++c) {
          if (m2.w[c] >= 1e-9) {
            model.components[c].mean = tmp.components[c].mean;
          }
        }
      }

      // ---- EM iterations: two jobs per step (§5.4) ------------------------
      double prev_ll = -std::numeric_limits<double>::infinity();
      for (size_t iter = 0; iter < params.max_em_iterations; ++iter) {
        Result<core::GmmEvaluator> evaluator =
            core::GmmEvaluator::Make(model, params.covariance_ridge);
        if (!evaluator.ok()) return evaluator.status();
        SoftMembership soft(*evaluator);
        auto moments_result = RunPipelineJob(retry, "em-step", [&] {
          return RunMomentJob(runner, dataset, model, soft, "em-step-means");
        });
        if (!moments_result.ok()) return moments_result.status();
        MomentSums moments = std::move(moments_result).value();
        core::GmmModel tmp = model;
        for (size_t c = 0; c < k; ++c) {
          if (moments.w[c] < 1e-9) continue;
          for (size_t j = 0; j < dim; ++j) {
            tmp.components[c].mean[j] = moments.lsum[c][j] / moments.w[c];
          }
        }
        auto covs = RunPipelineJob(retry, "em-step", [&] {
          return RunCovarianceJob(runner, dataset, tmp, soft, Means(tmp),
                                  "em-step-covs");
        });
        if (!covs.ok()) return covs.status();
        UpdateModel(moments, *covs, model);
        for (size_t c = 0; c < k; ++c) {
          if (moments.w[c] >= 1e-9) {
            model.components[c].mean = tmp.components[c].mean;
          }
        }
        const double denom = std::fabs(prev_ll) + 1e-12;
        if (iter > 0 &&
            std::fabs(moments.log_likelihood - prev_ll) / denom <
                params.em_tolerance) {
          break;
        }
        prev_ll = moments.log_likelihood;
      }

      if (ckpt.enabled()) {
        GmmPhaseState state;
        state.model = model;
        state.counters = counters_.Snapshot();
        P3C_RETURN_NOT_OK(
            commit_phase("em-refinement", EncodeGmmState(state)));
      }
      P3C_RETURN_NOT_OK(check_cancel("em-refinement"));
    }

    // ---- Outlier detection (§5.5) ------------------------------------------
    Result<core::GmmEvaluator> evaluator =
        core::GmmEvaluator::Make(model, params.covariance_ridge);
    if (!evaluator.ok()) return evaluator.status();
    const double critical = stats::ChiSquaredQuantile(
        1.0 - params.outlier_alpha, static_cast<double>(dim));

    std::vector<linalg::Vector> centers;
    std::vector<linalg::Matrix> covs;
    if (params.outlier == core::OutlierMode::kNaive) {
      centers = Means(model);
      covs.reserve(k);
      for (const auto& comp : model.components) covs.push_back(comp.cov);
    } else {
      // MVB: ball job + two statistics jobs (§5.5: "three MR jobs").
      auto balls_result = RunPipelineJob(retry, "mvb", [&] {
        return RunMvbBallJob(runner, dataset, model, *evaluator);
      });
      if (!balls_result.ok()) return balls_result.status();
      const std::vector<MvbBall>& balls = *balls_result;
      BallMembership ball_membership(*evaluator, balls);
      auto mb_result = RunPipelineJob(retry, "mvb", [&] {
        return RunMomentJob(runner, dataset, model, ball_membership,
                            "mvb-means");
      });
      if (!mb_result.ok()) return mb_result.status();
      MomentSums mb = std::move(mb_result).value();
      centers.assign(k, linalg::Vector(dim, 0.5));
      for (size_t c = 0; c < k; ++c) {
        if (mb.w[c] < 1e-9) {
          centers[c] = balls[c].center.empty() ? model.components[c].mean
                                               : balls[c].center;
          continue;
        }
        for (size_t j = 0; j < dim; ++j) {
          centers[c][j] = mb.lsum[c][j] / mb.w[c];
        }
      }
      auto cov_sums = RunPipelineJob(retry, "mvb", [&] {
        return RunCovarianceJob(runner, dataset, model, ball_membership,
                                centers, "mvb-covs");
      });
      if (!cov_sums.ok()) return cov_sums.status();
      covs.assign(k, linalg::Matrix::Identity(dim).Scale(1e-2));
      for (size_t c = 0; c < k; ++c) {
        const double denom = mb.w[c] * mb.w[c] - mb.w2[c];
        if (mb.w[c] >= 1e-9 && denom > 1e-12) {
          covs[c] = (*cov_sums)[c].Scale(mb.w[c] / denom);
        }
        core::ApplyMvbConsistencyCorrection(covs[c], dim);
      }
    }
    Result<std::vector<linalg::Cholesky>> factors =
        FactorizeAll(covs, params.covariance_ridge);
    if (!factors.ok()) return factors.status();
    auto od = RunPipelineJob(retry, "outlier-detection", [&] {
      return RunOdJob(runner, dataset, model, *evaluator, centers, *factors,
                      critical);
    });
    if (!od.ok()) return od.status();
    membership = std::move(od).value();
    if (ckpt.enabled()) {
      MembershipPhaseState state;
      state.membership = membership;
      state.counters = counters_.Snapshot();
      P3C_RETURN_NOT_OK(
          commit_phase("outlier-detection", EncodeMembershipState(state)));
    }
    P3C_RETURN_NOT_OK(check_cancel("outlier-detection"));
    for (size_t i = 0; i < membership.size(); ++i) {
      if (membership[i] >= 0) {
        reported_points[static_cast<size_t>(membership[i])].push_back(
            static_cast<data::PointId>(i));
      }
    }
  }

  // ---- Attribute inspection (§5.6) ----------------------------------------
  std::vector<uint64_t> member_counts(k, 0);
  for (int32_t c : membership) {
    if (c >= 0) ++member_counts[static_cast<size_t>(c)];
  }
  std::vector<size_t> bins_per_cluster(k, 1);
  for (size_t c = 0; c < k; ++c) {
    bins_per_cluster[c] = static_cast<size_t>(stats::NumBins(
        params.binning, std::max<uint64_t>(1, member_counts[c])));
  }
  auto member_histograms_result =
      RunPipelineJob(retry, "cluster-histograms", [&] {
        return RunClusterHistogramJob(runner, dataset, membership, k,
                                      bins_per_cluster);
      });
  if (!member_histograms_result.ok()) {
    return member_histograms_result.status();
  }
  const std::vector<std::vector<stats::Histogram>>& member_histograms =
      *member_histograms_result;
  std::vector<std::vector<core::Interval>> suggestions(k);
  for (size_t c = 0; c < k; ++c) {
    if (member_counts[c] == 0) continue;
    suggestions[c] = core::SuggestNewIntervals(
        detection.cores[c].signature, member_histograms[c], params.alpha_chi2);
  }
  const std::vector<std::vector<core::Interval>> accepted =
      core::ProveSuggestedIntervals(detection.cores, suggestions, params,
                                    counter);
  if (!support_job_error.ok()) return support_job_error;

  // ---- Interval tightening job (§5.7) --------------------------------------
  std::vector<std::vector<size_t>> final_attrs(k);
  for (size_t c = 0; c < k; ++c) {
    final_attrs[c] =
        core::FinalAttributes(detection.cores[c].signature, accepted[c]);
  }
  auto tightened_result = RunPipelineJob(retry, "interval-tightening", [&] {
    return RunTighteningJob(runner, dataset, membership, final_attrs);
  });
  if (!tightened_result.ok()) return tightened_result.status();
  const std::vector<std::vector<core::Interval>>& tightened =
      *tightened_result;

  for (size_t c = 0; c < k; ++c) {
    if (reported_points[c].empty()) continue;
    core::ProjectedCluster cluster;
    cluster.points = reported_points[c];
    if (member_counts[c] == 0) {
      cluster.attrs = detection.cores[c].signature.attrs();
      cluster.intervals = detection.cores[c].signature.intervals();
    } else {
      cluster.attrs = final_attrs[c];
      cluster.intervals = tightened[c];
    }
    result.clusters.push_back(std::move(cluster));
  }

  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace p3c::mr
