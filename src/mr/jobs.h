#ifndef P3C_MR_JOBS_H_
#define P3C_MR_JOBS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"

#include "src/core/gmm.h"
#include "src/core/interval.h"
#include "src/core/outlier.h"
#include "src/core/signature.h"
#include "src/data/dataset.h"
#include "src/linalg/matrix.h"
#include "src/mapreduce/runner.h"
#include "src/stats/histogram.h"

namespace p3c::mr {

/// The record type of every job: a row index into the dataset (the
/// dataset itself travels via the distributed-cache analog, i.e. a shared
/// immutable reference).
using Record = data::PointId;

/// Identity record list [0, n) for a dataset; the "input file" every job
/// reads.
std::vector<Record> MakeRecords(const data::Dataset& dataset);

/// §5.1 histogram job: per-split partial histograms (in-mapper combining
/// of Eq. 8), merged per attribute by the reducers. Returns one histogram
/// per attribute with NumBins(rule, n) bins.
///
/// All job wrappers below surface the engine's failure Status (a task
/// that exhausted its attempts) instead of a value; see LocalRunner.
Result<std::vector<stats::Histogram>> RunHistogramJob(
    LocalRunner& runner, const data::Dataset& dataset,
    stats::BinningRule rule);

/// §5.3 support-counting job: the RSSC bit masks are built by the driver
/// ("calculated by the main program beforehand") and shipped to mappers;
/// each mapper aggregates split-local support counts, reducers sum.
/// Result is parallel to `signatures`.
Result<std::vector<uint64_t>> RunSupportJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<core::Signature>& signatures);

/// First/second moment sums the EM jobs of §5.4 exchange: wC, wC2 and lC.
struct MomentSums {
  std::vector<double> w;               ///< wC: per-component weight sums
  std::vector<double> w2;              ///< wC2: sums of squared weights
  std::vector<linalg::Vector> lsum;    ///< lC: per-component sums of w * x
  double log_likelihood = 0.0;         ///< sum over points (soft jobs only)
};

/// Membership oracle deciding, per point, which components it contributes
/// to and with what weight; lets one job implementation serve EM-init
/// (hard, by core containment), EM steps (soft responsibilities), and the
/// MVB in-ball statistics (hard, ball-filtered).
class MembershipFn {
 public:
  virtual ~MembershipFn() = default;
  /// Appends (component, weight) contributions of `x` (Arel coordinates,
  /// with `point` available for containment tests on the full row).
  virtual void Contributions(
      data::PointId point, const linalg::Vector& x,
      std::vector<std::pair<uint32_t, double>>& out) const = 0;
  /// Optional log-likelihood contribution of the point (EM E-step).
  virtual double LogLikelihood(const linalg::Vector& x) const {
    (void)x;
    return 0.0;
  }
};

/// First EM job of a step (and of the init rounds): accumulates w_C and
/// l_C per component under the given membership.
Result<MomentSums> RunMomentJob(LocalRunner& runner,
                                const data::Dataset& dataset,
                                const core::GmmModel& model,
                                const MembershipFn& membership,
                                const char* job_name);

/// Second EM job of a step: accumulates the covariance numerators
/// sum w (x - mu)(x - mu)^T per component around the provided means.
Result<std::vector<linalg::Matrix>> RunCovarianceJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const core::GmmModel& model, const MembershipFn& membership,
    const std::vector<linalg::Vector>& means, const char* job_name);

/// §5.5 MVB ball job: each mapper caches its split (Setup), computes the
/// per-split dimension-wise median and median radius per cluster in
/// Cleanup, and the reducer takes the dimension-wise median of the means
/// and the median of the radii.
struct MvbBall {
  linalg::Vector center;
  double radius = 0.0;
};
Result<std::vector<MvbBall>> RunMvbBallJob(LocalRunner& runner,
                                           const data::Dataset& dataset,
                                           const core::GmmModel& model,
                                           const core::GmmEvaluator& evaluator);

/// §5.5 OD job (map-only): emits the membership attribute per point —
/// the argmax-posterior cluster, or -1 when the Mahalanobis distance to
/// the supplied per-cluster statistics exceeds `critical`. `centers` /
/// `factors` are the naive (EM) or MVB statistics.
Result<std::vector<int32_t>> RunOdJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const core::GmmModel& model, const core::GmmEvaluator& evaluator,
    const std::vector<linalg::Vector>& centers,
    const std::vector<linalg::Cholesky>& factors, double critical);

/// §5.6 per-cluster histogram job. `membership[i]` is the cluster of
/// point i or negative for none; returns histograms[cluster][attr] with
/// bins from `bins_per_cluster[cluster]`.
Result<std::vector<std::vector<stats::Histogram>>> RunClusterHistogramJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<int32_t>& membership, size_t num_clusters,
    const std::vector<size_t>& bins_per_cluster);

/// §5.7 interval-tightening job: split-local min/max per (cluster,
/// relevant attribute), min/max-aggregated by the reducer. Returns
/// intervals[cluster] parallel to attrs[cluster]; clusters without
/// members yield empty vectors.
Result<std::vector<std::vector<core::Interval>>> RunTighteningJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<int32_t>& membership,
    const std::vector<std::vector<size_t>>& attrs);

/// §6 support-set job (map-only, Light pipeline): emits, per point, the
/// cluster cores whose support set contains it. Returns per-core sorted
/// point lists plus the per-point unique assignment (m'): -1 none, -2
/// several.
struct SupportSetJobResult {
  std::vector<std::vector<data::PointId>> support_sets;
  std::vector<int32_t> unique_assignment;
};
Result<SupportSetJobResult> RunSupportSetJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<core::Signature>& signatures);

}  // namespace p3c::mr

#endif  // P3C_MR_JOBS_H_
