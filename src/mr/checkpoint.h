#ifndef P3C_MR_CHECKPOINT_H_
#define P3C_MR_CHECKPOINT_H_

// Durable phase checkpoints for the P3C+-MR pipeline (DESIGN.md §13).
//
// The driver persists its state after every completed pipeline phase so
// a killed run resumes at the first incomplete phase instead of
// restarting from scratch — the in-process analog of Hadoop keeping
// each job's output on HDFS. The on-disk layout is one directory:
//
//   MANIFEST.p3ck                 commit point; lists the completed
//                                 phases with their file checksums
//   phase-<i>-<name>.p3ck         serialized driver state of phase i
//
// All files are checksummed P3CK blobs (src/data/io.h) written through
// the atomic temp+fsync+rename writer, and the manifest additionally
// binds the dataset fingerprint, the parameter hash, the checkpoint
// format version, and each phase file's payload checksum. Validation is
// all-or-nothing: any corruption, truncation, version skew, or
// fingerprint/parameter mismatch is logged, counted, and discards the
// whole checkpoint — the run degrades to a clean fresh execution, never
// a crash and never a resume from stale state.

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/counters.h"
#include "src/common/status.h"
#include "src/core/core_detection.h"
#include "src/core/gmm.h"
#include "src/core/params.h"
#include "src/data/dataset.h"
#include "src/stats/histogram.h"

namespace p3c::mr {

/// Version of the checkpoint payload schema. Bumped whenever any
/// encoder below changes shape; a manifest carrying a different version
/// is discarded as unusable (version skew), not misparsed.
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// P3CK blob kind tags of the two checkpoint file types (see
/// data::WriteBlobFile). Public so tests can craft hostile files.
inline constexpr uint32_t kManifestBlobKind = 0x4d414e49;  // "MANI"
inline constexpr uint32_t kPhaseBlobKind = 0x50484153;     // "PHAS"

/// Name of the commit-point file inside a checkpoint directory.
inline constexpr char kManifestFilename[] = "MANIFEST.p3ck";

/// FNV-1a over (n, d, raw values): identifies the exact dataset a
/// checkpoint was taken against.
uint64_t DatasetFingerprint(const data::Dataset& dataset);

/// FNV-1a over every P3CParams field (including `light`, which selects
/// the pipeline variant). Engine knobs (threads, reducers, splits) are
/// deliberately excluded: the engine's determinism contract makes them
/// irrelevant to pipeline output, so resuming under a different thread
/// count is sound.
uint64_t ParamsHash(const core::P3CParams& params);

/// Little-endian byte encoder for checkpoint payloads. Doubles are
/// stored as bit patterns, so every value round-trips exactly — the
/// resume-determinism contract depends on it.
class BlobWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v);
  void PutDouble(double v);
  /// u64 length followed by the raw bytes.
  void PutString(const std::string& s);

  [[nodiscard]] const std::string& buffer() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked decoder with a sticky error: getters return zero
/// values once a read has run past the end, and `status()` reports the
/// first failure. Callers decode a full record, then check status()
/// once — hostile payloads degrade into one descriptive error instead
/// of undefined reads.
class BlobReader {
 public:
  BlobReader(const std::string& buffer, std::string context);

  uint32_t GetU32();
  uint64_t GetU64();
  int32_t GetI32();
  double GetDouble();
  std::string GetString();

  /// OK until a getter over-ran the buffer; then the first error.
  [[nodiscard]] const Status& status() const { return status_; }
  /// Fails when undecoded bytes remain (a payload longer than its
  /// schema is as suspect as a short one).
  [[nodiscard]] Status Finish() const;

 private:
  bool Take(void* dst, size_t len);

  const std::string& buffer_;
  std::string context_;
  size_t pos_ = 0;
  Status status_;
};

// ---- Per-phase driver state -----------------------------------------------
//
// Every payload carries the cumulative framework-counter snapshot at
// the instant the phase completed, so a resumed run restores the
// counters of the skipped phases and its final counter JSON is
// byte-identical to an uninterrupted run's.

struct HistogramPhaseState {
  std::vector<stats::Histogram> histograms;
  MetricBag counters;
};

struct CoresPhaseState {
  core::CoreDetectionStats stats;
  std::vector<core::ClusterCore> cores;
  MetricBag counters;
};

struct SupportSetsPhaseState {
  std::vector<std::vector<data::PointId>> support_sets;
  std::vector<int32_t> unique_assignment;
  MetricBag counters;
};

struct GmmPhaseState {
  core::GmmModel model;
  MetricBag counters;
};

struct MembershipPhaseState {
  std::vector<int32_t> membership;
  MetricBag counters;
};

std::string EncodeHistogramState(const HistogramPhaseState& state);
Result<HistogramPhaseState> DecodeHistogramState(const std::string& payload);

std::string EncodeCoresState(const CoresPhaseState& state);
Result<CoresPhaseState> DecodeCoresState(const std::string& payload);

std::string EncodeSupportSetsState(const SupportSetsPhaseState& state);
Result<SupportSetsPhaseState> DecodeSupportSetsState(
    const std::string& payload);

std::string EncodeGmmState(const GmmPhaseState& state);
Result<GmmPhaseState> DecodeGmmState(const std::string& payload);

std::string EncodeMembershipState(const MembershipPhaseState& state);
Result<MembershipPhaseState> DecodeMembershipState(
    const std::string& payload);

void EncodeMetricBag(const MetricBag& bag, BlobWriter& writer);
Result<MetricBag> DecodeMetricBag(BlobReader& reader);

/// Owns one checkpoint directory for one pipeline run.
///
/// Lifecycle: construct with the run's identity, call Initialize() to
/// scan and validate any existing checkpoint, consult num_completed() /
/// PhaseName() / PhasePayload() to skip finished phases, and call
/// CommitPhase() after each phase the run executes live. Disabled
/// (empty dir) it is inert: every query says "nothing completed" and
/// commits are no-ops.
class CheckpointManager {
 public:
  struct Options {
    /// Checkpoint directory; empty disables checkpointing entirely.
    std::string dir;
    uint64_t dataset_fingerprint = 0;
    uint64_t params_hash = 0;
    /// Driver-side observability sink (corruption counter, resume
    /// gauge, per-phase write timings). Kept separate from the
    /// framework-counter sink so resume bookkeeping never perturbs the
    /// deterministic counter JSON. May be null.
    MetricBag* driver_metrics = nullptr;
  };

  /// Name of the counter incremented once per discarded checkpoint.
  static constexpr const char* kCorruptCounter =
      "checkpoint.corrupt_total";

  explicit CheckpointManager(Options options);

  [[nodiscard]] bool enabled() const { return !options_.dir.empty(); }

  /// Creates the directory if needed and validates any existing
  /// manifest chain. A missing manifest is a normal fresh start; every
  /// validation failure logs its reason, increments kCorruptCounter,
  /// and leaves the manager in the fresh state. Never fails the run —
  /// only CommitPhase can do that.
  void Initialize();

  /// Completed, fully validated phases available for resume.
  [[nodiscard]] size_t num_completed() const { return phases_.size(); }
  [[nodiscard]] const std::string& PhaseName(size_t index) const {
    return phases_[index].name;
  }
  /// Decoded payload of completed phase `index`.
  [[nodiscard]] const std::string& PhasePayload(size_t index) const {
    return phases_[index].payload;
  }

  /// Serializes `payload` as the next completed phase: writes the phase
  /// state blob, then the manifest, both atomically — the manifest
  /// rename is the commit point. Failures propagate: the caller asked
  /// for durability, so an unwritable checkpoint is a real error.
  Status CommitPhase(const std::string& name, const std::string& payload);

  /// Driver-side fallback hook: a payload that validated here can still
  /// fail the driver's phase-specific decode (schema drift inside one
  /// phase). Logs `reason`, increments kCorruptCounter, and resets to
  /// the fresh state so the run re-executes — and re-commits — every
  /// phase. No-op while disabled.
  void DiscardAll(const std::string& reason) {
    if (enabled()) Discard(reason);
  }

 private:
  struct PhaseEntry {
    std::string name;
    std::string filename;
    uint64_t payload_checksum = 0;
    std::string payload;  ///< inner phase payload (decoded from the blob)
  };

  /// Logs `reason`, bumps the corruption counter, and resets to fresh.
  void Discard(const std::string& reason);
  Status WriteManifest();
  [[nodiscard]] std::string ManifestPath() const;

  Options options_;
  std::vector<PhaseEntry> phases_;
};

}  // namespace p3c::mr

#endif  // P3C_MR_CHECKPOINT_H_
