#ifndef P3C_MR_P3C_MR_H_
#define P3C_MR_P3C_MR_H_

#include <memory>
#include <string>

#include "src/common/cancellation.h"
#include "src/common/counters.h"
#include "src/common/status.h"
#include "src/core/params.h"
#include "src/core/result.h"
#include "src/data/dataset.h"
#include "src/mapreduce/counters.h"
#include "src/mapreduce/metrics.h"
#include "src/mapreduce/runner.h"

namespace p3c::mr {

/// Job-level retry policy of the pipeline driver — the analog of
/// resubmitting a failed Hadoop job. Task-level retries inside a job are
/// RunnerOptions::max_attempts; this policy re-runs a *whole job* whose
/// tasks exhausted those attempts, which is safe because failed jobs
/// have no side effects (no counters, no metrics double-counting — the
/// failed run is recorded as its own JobMetrics entry with
/// succeeded=false).
struct JobRetryPolicy {
  /// Total runs of one job, including the first (1 = no job-level retry).
  size_t max_job_attempts = 2;
  /// Fixed sleep between job attempts; 0 disables sleeping.
  double backoff_seconds = 0.0;
  /// Wall-clock budget per pipeline phase (0 disables): once a phase
  /// has spent this long across its job attempts, the driver stops
  /// retrying and fails the pipeline with a phase-tagged
  /// kDeadlineExceeded Status. The backstop above task deadlines — a
  /// pathological phase degrades into a bounded, explained failure
  /// instead of wedging the caller. A successfully finishing job is
  /// never failed by the budget.
  double phase_budget_seconds = 0.0;
};

/// True for failures worth re-running a job on: kInternal (crashed /
/// injected task faults) and kIOError (transient storage). Anything
/// else — invalid arguments, not-implemented, precondition violations —
/// is deterministic and fails the pipeline immediately.
bool IsRetryableJobFailure(const Status& status);

/// Configuration of the MapReduce pipelines.
struct P3CMROptions {
  /// Model parameters. `params.light = true` selects P3C+-MR-Light (§6);
  /// `params.outlier` selects the MVB or naive variant of P3C+-MR;
  /// `params.multilevel_candidates` defaults to true here (the Tc
  /// heuristic of §5.3 exists to save MR jobs).
  core::P3CParams params;
  /// Engine knobs (threads, split size, reducers, task retry).
  RunnerOptions runner;
  /// Job-level recovery: how often the driver re-runs a job whose
  /// failure IsRetryableJobFailure() before failing the pipeline.
  JobRetryPolicy retry;
  /// Durable checkpoint/resume (DESIGN.md §13): when non-empty, the
  /// driver persists its state into this directory after every
  /// completed pipeline phase and, on the next Cluster call against the
  /// same dataset and parameters, skips the completed phases and
  /// resumes at the first incomplete one. Any corruption or mismatch in
  /// the directory is logged, counted, and degrades to a fresh run.
  std::string checkpoint_dir;
  /// Driver-level cancellation: polled at phase boundaries and between
  /// support-count batches. When it fires, the pipeline stops with
  /// kCancelled after its last completed phase's checkpoint is already
  /// durable — a SIGTERM'd run loses at most the phase in flight.
  CancellationToken cancel;

  P3CMROptions() {
    params.multilevel_candidates = true;
    // "The optimal setting of Tc depends on the available cluster" (§5.3):
    // the paper's 3e4 amortizes Hadoop's ~tens-of-seconds job overhead;
    // the in-process engine's per-job overhead is microseconds, so a much
    // smaller batch bound is optimal here (see bench_candidate_collection).
    params.t_c = 2000;
  }
};

/// P3C+-MR (§5) and P3C+-MR-Light (§6): the paper's MapReduce job
/// decomposition executed on the in-process engine.
///
/// Pipeline (full): histogram job → relevant intervals (driver) →
/// A-priori candidate generation (driver, parallel above Tgen) with
/// batched support jobs (Tc heuristic) → EM init (2x2 jobs) → EM steps
/// (2 jobs each) → [MVB ball job + 2 stats jobs] → OD job (map-only) →
/// per-cluster histogram job → AI proving support job → tightening job.
/// The Light pipeline replaces the EM/OD block with the support-set job
/// and the m' unique-membership rule.
///
/// Job-level statistics of the most recent run are available via
/// metrics(); the runtime figure (Fig. 7) and the job-count analysis of
/// §7.5.2 are generated from them.
class P3CMR {
 public:
  explicit P3CMR(P3CMROptions options = {});

  const core::P3CParams& params() const { return options_.params; }

  /// Runs the pipeline. Same contract as core::P3CPipeline::Cluster.
  /// On an unrecoverable job failure the Status names the phase, the
  /// failing job/task, and how many job attempts were made.
  Result<core::ClusteringResult> Cluster(const data::Dataset& dataset);

  /// Per-job execution log of the most recent Cluster call.
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Merged framework counters of the most recent Cluster call.
  const Counters& counters() const { return counters_; }
  /// Driver-side observability of the most recent Cluster call:
  /// checkpoint corruption counter, `resumed_from_phase` gauge, and
  /// per-phase `checkpoint.write_seconds.*` gauges. Kept apart from
  /// counters() so resume bookkeeping never perturbs the deterministic
  /// framework-counter JSON.
  const MetricBag& driver_metrics() const { return driver_metrics_; }

 private:
  P3CMROptions options_;
  MetricsRegistry metrics_;
  Counters counters_;
  MetricBag driver_metrics_;
  std::unique_ptr<LocalRunner> runner_;
};

}  // namespace p3c::mr

#endif  // P3C_MR_P3C_MR_H_
