#include "src/mr/jobs.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "src/common/resource.h"
#include "src/core/rssc.h"
#include "src/stats/descriptive.h"

namespace p3c::mr {

namespace {

using KeyedDoubles = std::pair<int64_t, std::vector<double>>;

/// Generic sum reducer for (int64, vector<double>) stats records.
class VectorSumReducer
    : public Reducer<int64_t, std::vector<double>, KeyedDoubles> {
 public:
  void Reduce(const int64_t& key,
              std::span<const std::vector<double>> values,
              std::vector<KeyedDoubles>& out) override {
    std::vector<double> acc;
    for (const auto& v : values) {
      // Per-group accumulator, moved into the emitted payload whose
      // top-level bytes the emitter charge already covers.
      if (acc.empty()) acc.assign(v.size(), 0.0);  // NOLINT(p3c-untracked-hot-alloc)
      for (size_t i = 0; i < v.size() && i < acc.size(); ++i) acc[i] += v[i];
    }
    out.emplace_back(key, std::move(acc));
  }
};

/// Generic sum reducer for (int64, vector<uint64>) count records.
class CountSumReducer
    : public Reducer<int64_t, std::vector<uint64_t>,
                     std::pair<int64_t, std::vector<uint64_t>>> {
 public:
  void Reduce(const int64_t& key,
              std::span<const std::vector<uint64_t>> values,
              std::vector<std::pair<int64_t, std::vector<uint64_t>>>& out)
      override {
    std::vector<uint64_t> acc;
    for (const auto& v : values) {
      // Per-group accumulator; see VectorSumReducer above.
      if (acc.empty()) acc.assign(v.size(), 0);  // NOLINT(p3c-untracked-hot-alloc)
      for (size_t i = 0; i < v.size() && i < acc.size(); ++i) acc[i] += v[i];
    }
    out.emplace_back(key, std::move(acc));
  }
};

/// Per-job reducer count: the paper's jobs have small, known key
/// cardinalities (an attribute index, a cluster index), so partitions
/// beyond that are guaranteed-empty reduce tasks. Cap the runner's
/// default at the job's key count.
size_t ReducersForKeys(const LocalRunner& runner, size_t num_keys) {
  return std::max<size_t>(
      1, std::min(num_keys, runner.DefaultNumReducers()));
}

// ---------------------------------------------------------------------------
// Histogram job (§5.1)
// ---------------------------------------------------------------------------

struct HistogramJobConfig {
  const data::Dataset* dataset;
  size_t bins;
};

class HistogramMapper : public Mapper<Record, int64_t, std::vector<uint64_t>> {
 public:
  explicit HistogramMapper(const HistogramJobConfig* config)
      : config_(config),
        local_(config->dataset->num_dims(),
               stats::Histogram(config->bins)) {
    mem_.Set(static_cast<int64_t>(local_.size() * config->bins *
                                  sizeof(uint64_t)));
  }

  void Map(const Record& record,
           Emitter<int64_t, std::vector<uint64_t>>& out) override {
    (void)out;
    const auto row = config_->dataset->Row(record);
    for (size_t j = 0; j < local_.size(); ++j) local_[j].Add(row[j]);
    ++points_;
  }

  void Cleanup(Emitter<int64_t, std::vector<uint64_t>>& out) override {
    for (size_t j = 0; j < local_.size(); ++j) {
      out.Emit(static_cast<int64_t>(j), local_[j].counts());
    }
    // Flushed once per task so the per-record path stays counter-free;
    // integer-valued counters keep the exported JSON byte-identical
    // across thread counts (doubles sum exactly below 2^53).
    out.counters().Increment("histogram/points", points_);
    out.counters().SetGauge("histogram/bins",
                            static_cast<double>(config_->bins));
  }

 private:
  const HistogramJobConfig* config_;
  std::vector<stats::Histogram> local_;
  uint64_t points_ = 0;
  resource::ScopedBytes mem_{resource::MemScope::kHistogramBins};
};

// ---------------------------------------------------------------------------
// Support job (§5.3)
// ---------------------------------------------------------------------------

struct SupportJobConfig {
  const data::Dataset* dataset;
  const core::Rssc* rssc;  // "distributed cache" payload
};

class SupportMapper : public Mapper<Record, int64_t, std::vector<uint64_t>> {
 public:
  explicit SupportMapper(const SupportJobConfig* config)
      : config_(config),
        // One counter per live signature; Rssc::Accumulate never touches
        // the padding lanes of its last bitmap word.
        supports_(config->rssc->num_signatures(), 0) {}

  void Map(const Record& record,
           Emitter<int64_t, std::vector<uint64_t>>& out) override {
    (void)out;
    config_->rssc->Accumulate(config_->dataset->Row(record), scratch_,
                              supports_);
    ++points_;
  }

  void Cleanup(Emitter<int64_t, std::vector<uint64_t>>& out) override {
    // In-mapper combining: one record per split instead of one per point.
    out.counters().Increment("support/points", points_);
    out.counters().SetGauge("support/candidates",
                            static_cast<double>(supports_.size()));
    out.Emit(0, std::move(supports_));
  }

 private:
  const SupportJobConfig* config_;
  std::vector<uint64_t> scratch_;
  std::vector<uint64_t> supports_;
  uint64_t points_ = 0;
};

// ---------------------------------------------------------------------------
// Moment / covariance jobs (§5.4)
// ---------------------------------------------------------------------------

struct MomentJobConfig {
  const data::Dataset* dataset;
  const core::GmmModel* model;
  const MembershipFn* membership;
};

constexpr int64_t kLogLikelihoodKey = -1;

class MomentMapper : public Mapper<Record, int64_t, std::vector<double>> {
 public:
  explicit MomentMapper(const MomentJobConfig* config)
      : config_(config),
        k_(config->model->num_components()),
        dim_(config->model->dim()),
        w_(k_, 0.0),
        w2_(k_, 0.0),
        lsum_(k_, linalg::Vector(dim_, 0.0)) {
    mem_.Set(static_cast<int64_t>((2 * k_ + k_ * dim_) * sizeof(double)));
  }

  void Map(const Record& record,
           Emitter<int64_t, std::vector<double>>& out) override {
    (void)out;
    const linalg::Vector x =
        config_->model->Project(config_->dataset->Row(record));
    contributions_.clear();
    config_->membership->Contributions(record, x, contributions_);
    for (const auto& [c, weight] : contributions_) {
      w_[c] += weight;
      w2_[c] += weight * weight;
      for (size_t j = 0; j < dim_; ++j) lsum_[c][j] += weight * x[j];
    }
    log_likelihood_ += config_->membership->LogLikelihood(x);
  }

  void Cleanup(Emitter<int64_t, std::vector<double>>& out) override {
    // Payload layout: [wC, wC2, lC...] (§5.4's first EM job statistics).
    for (size_t c = 0; c < k_; ++c) {
      std::vector<double> stats;
      // Emit payload (dim+2 doubles), covered by the emitter charge.
      stats.reserve(dim_ + 2);  // NOLINT(p3c-untracked-hot-alloc)
      stats.push_back(w_[c]);
      stats.push_back(w2_[c]);
      stats.insert(stats.end(), lsum_[c].begin(), lsum_[c].end());
      out.Emit(static_cast<int64_t>(c), std::move(stats));
    }
    out.Emit(kLogLikelihoodKey, std::vector<double>{log_likelihood_});
  }

 private:
  const MomentJobConfig* config_;
  size_t k_;
  size_t dim_;
  std::vector<double> w_;
  std::vector<double> w2_;
  std::vector<linalg::Vector> lsum_;
  double log_likelihood_ = 0.0;
  std::vector<std::pair<uint32_t, double>> contributions_;
  resource::ScopedBytes mem_{resource::MemScope::kGmmMatrices};
};

struct CovarianceJobConfig {
  const data::Dataset* dataset;
  const core::GmmModel* model;
  const MembershipFn* membership;
  const std::vector<linalg::Vector>* means;
};

class CovarianceMapper : public Mapper<Record, int64_t, std::vector<double>> {
 public:
  explicit CovarianceMapper(const CovarianceJobConfig* config)
      : config_(config),
        k_(config->model->num_components()),
        dim_(config->model->dim()),
        acc_(k_, linalg::Matrix(dim_, dim_)) {
    mem_.Set(static_cast<int64_t>(k_ * dim_ * dim_ * sizeof(double)));
  }

  void Map(const Record& record,
           Emitter<int64_t, std::vector<double>>& out) override {
    (void)out;
    const linalg::Vector x =
        config_->model->Project(config_->dataset->Row(record));
    contributions_.clear();
    config_->membership->Contributions(record, x, contributions_);
    for (const auto& [c, weight] : contributions_) {
      const linalg::Vector centered = linalg::VecSub(x, (*config_->means)[c]);
      acc_[c].AddOuterProduct(centered, weight);
    }
  }

  void Cleanup(Emitter<int64_t, std::vector<double>>& out) override {
    for (size_t c = 0; c < k_; ++c) {
      out.Emit(static_cast<int64_t>(c), acc_[c].data());
    }
  }

 private:
  const CovarianceJobConfig* config_;
  size_t k_;
  size_t dim_;
  std::vector<linalg::Matrix> acc_;
  std::vector<std::pair<uint32_t, double>> contributions_;
  resource::ScopedBytes mem_{resource::MemScope::kGmmMatrices};
};

// ---------------------------------------------------------------------------
// MVB ball job (§5.5)
// ---------------------------------------------------------------------------

struct MvbBallJobConfig {
  const data::Dataset* dataset;
  const core::GmmModel* model;
  const core::GmmEvaluator* evaluator;
};

class MvbBallMapper : public Mapper<Record, int64_t, std::vector<double>> {
 public:
  explicit MvbBallMapper(const MvbBallJobConfig* config)
      : config_(config),
        members_(config->model->num_components()) {}

  void Setup(size_t split_index, std::span<const Record> split,
             Emitter<int64_t, std::vector<double>>& out) override {
    // "mapper j caches the set of all data points Xsplit of the current
    // split" -- here the projected coordinates, grouped by cluster.
    (void)split_index;
    (void)out;
    for (const Record& record : split) {
      const linalg::Vector x =
          config_->model->Project(config_->dataset->Row(record));
      const size_t c = config_->evaluator->HardAssign(x);
      members_[c].push_back(x);
    }
  }

  void Map(const Record& record,
           Emitter<int64_t, std::vector<double>>& out) override {
    (void)record;
    (void)out;  // all work happens in Setup/Cleanup
  }

  void Cleanup(Emitter<int64_t, std::vector<double>>& out) override {
    for (size_t c = 0; c < members_.size(); ++c) {
      if (members_[c].empty()) continue;
      const core::MvbStatistics stats =
          core::ComputeMvbStatistics(members_[c]);
      std::vector<double> payload = stats.center;
      payload.push_back(stats.radius);
      out.Emit(static_cast<int64_t>(c), std::move(payload));
    }
  }

 private:
  const MvbBallJobConfig* config_;
  std::vector<std::vector<linalg::Vector>> members_;
};

class MvbBallReducer
    : public Reducer<int64_t, std::vector<double>, KeyedDoubles> {
 public:
  void Reduce(const int64_t& key,
              std::span<const std::vector<double>> values,
              std::vector<KeyedDoubles>& out) override {
    if (values.empty()) return;
    const size_t dim = values.front().size() - 1;
    // Dimension-wise median of the split means; median of the radii.
    std::vector<double> result(dim + 1, 0.0);
    std::vector<double> column(values.size());
    for (size_t j = 0; j <= dim; ++j) {
      for (size_t i = 0; i < values.size(); ++i) column[i] = values[i][j];
      result[j] = stats::Median(column);
    }
    out.emplace_back(key, std::move(result));
  }
};

// ---------------------------------------------------------------------------
// OD job (§5.5, map-only)
// ---------------------------------------------------------------------------

struct OdJobConfig {
  const data::Dataset* dataset;
  const core::GmmModel* model;
  const core::GmmEvaluator* evaluator;
  const std::vector<linalg::Vector>* centers;
  const std::vector<linalg::Cholesky>* factors;
  double critical;
};

class OdMapper : public Mapper<Record, data::PointId, int32_t> {
 public:
  explicit OdMapper(const OdJobConfig* config) : config_(config) {}

  void Map(const Record& record,
           Emitter<data::PointId, int32_t>& out) override {
    const linalg::Vector x =
        config_->model->Project(config_->dataset->Row(record));
    const size_t c = config_->evaluator->HardAssign(x);
    const double d2 =
        (*config_->factors)[c].MahalanobisSquared(x, (*config_->centers)[c]);
    const bool outlier = d2 > config_->critical;
    if (outlier) {
      ++outliers_;
    } else {
      ++members_;
      // Integer observations: the histogram's double sum stays exact, so
      // the exported bucket counts AND sum are thread-count invariant.
      out.counters().Observe("od/cluster", static_cast<double>(c));
    }
    out.Emit(record, outlier ? -1 : static_cast<int32_t>(c));
  }

  void Cleanup(Emitter<data::PointId, int32_t>& out) override {
    out.counters().Increment("od/outliers", outliers_);
    out.counters().Increment("od/members", members_);
  }

 private:
  const OdJobConfig* config_;
  uint64_t outliers_ = 0;
  uint64_t members_ = 0;
};

// ---------------------------------------------------------------------------
// Per-cluster histogram job (§5.6)
// ---------------------------------------------------------------------------

struct ClusterHistogramJobConfig {
  const data::Dataset* dataset;
  const std::vector<int32_t>* membership;
  const std::vector<size_t>* bins_per_cluster;
};

class ClusterHistogramMapper
    : public Mapper<Record, int64_t, std::vector<uint64_t>> {
 public:
  explicit ClusterHistogramMapper(const ClusterHistogramJobConfig* config)
      : config_(config),
        local_(config->bins_per_cluster->size()) {}

  void Map(const Record& record,
           Emitter<int64_t, std::vector<uint64_t>>& out) override {
    (void)out;
    const int32_t c = (*config_->membership)[record];
    if (c < 0) return;
    auto& cluster_local = local_[static_cast<size_t>(c)];
    const size_t d = config_->dataset->num_dims();
    if (cluster_local.empty()) {
      const size_t bins =
          (*config_->bins_per_cluster)[static_cast<size_t>(c)];
      cluster_local.assign(d, stats::Histogram(bins));
      // Lazy materialization is once per (cluster, task), so the charge
      // update stays off the per-record path.
      mem_bytes_ += static_cast<int64_t>(d * bins * sizeof(uint64_t));
      mem_.Set(mem_bytes_);
    }
    const auto row = config_->dataset->Row(record);
    for (size_t j = 0; j < d; ++j) cluster_local[j].Add(row[j]);
  }

  void Cleanup(Emitter<int64_t, std::vector<uint64_t>>& out) override {
    const int64_t d = static_cast<int64_t>(config_->dataset->num_dims());
    for (size_t c = 0; c < local_.size(); ++c) {
      for (size_t j = 0; j < local_[c].size(); ++j) {
        out.Emit(static_cast<int64_t>(c) * d + static_cast<int64_t>(j),
                 local_[c][j].counts());
      }
    }
  }

 private:
  const ClusterHistogramJobConfig* config_;
  std::vector<std::vector<stats::Histogram>> local_;
  int64_t mem_bytes_ = 0;
  resource::ScopedBytes mem_{resource::MemScope::kHistogramBins};
};

// ---------------------------------------------------------------------------
// Tightening job (§5.7)
// ---------------------------------------------------------------------------

struct TighteningJobConfig {
  const data::Dataset* dataset;
  const std::vector<int32_t>* membership;
  const std::vector<std::vector<size_t>>* attrs;
};

class TighteningMapper : public Mapper<Record, int64_t, std::vector<double>> {
 public:
  explicit TighteningMapper(const TighteningJobConfig* config)
      : config_(config),
        lo_(config->attrs->size()),
        hi_(config->attrs->size()) {}

  void Map(const Record& record,
           Emitter<int64_t, std::vector<double>>& out) override {
    (void)out;
    const int32_t c = (*config_->membership)[record];
    if (c < 0) return;
    const auto& attrs = (*config_->attrs)[static_cast<size_t>(c)];
    auto& lo = lo_[static_cast<size_t>(c)];
    auto& hi = hi_[static_cast<size_t>(c)];
    if (lo.empty()) {
      // Per-cluster min/max bounds: O(k x attrs) doubles per task,
      // noise next to the charged dataset the rows come from.
      lo.assign(  // NOLINT(p3c-untracked-hot-alloc)
          attrs.size(), std::numeric_limits<double>::infinity());
      hi.assign(  // NOLINT(p3c-untracked-hot-alloc)
          attrs.size(), -std::numeric_limits<double>::infinity());
    }
    const auto row = config_->dataset->Row(record);
    for (size_t a = 0; a < attrs.size(); ++a) {
      lo[a] = std::min(lo[a], row[attrs[a]]);
      hi[a] = std::max(hi[a], row[attrs[a]]);
    }
  }

  void Cleanup(Emitter<int64_t, std::vector<double>>& out) override {
    for (size_t c = 0; c < lo_.size(); ++c) {
      if (lo_[c].empty()) continue;
      std::vector<double> payload;
      // Emit payload (2 x attrs doubles), covered by the emitter charge.
      payload.reserve(lo_[c].size() * 2);  // NOLINT(p3c-untracked-hot-alloc)
      payload.insert(payload.end(), lo_[c].begin(), lo_[c].end());
      payload.insert(payload.end(), hi_[c].begin(), hi_[c].end());
      out.Emit(static_cast<int64_t>(c), std::move(payload));
    }
  }

 private:
  const TighteningJobConfig* config_;
  std::vector<std::vector<double>> lo_;
  std::vector<std::vector<double>> hi_;
};

class TighteningReducer
    : public Reducer<int64_t, std::vector<double>, KeyedDoubles> {
 public:
  void Reduce(const int64_t& key,
              std::span<const std::vector<double>> values,
              std::vector<KeyedDoubles>& out) override {
    if (values.empty()) return;
    const size_t half = values.front().size() / 2;
    std::vector<double> acc = values.front();
    for (size_t i = 1; i < values.size(); ++i) {
      for (size_t a = 0; a < half; ++a) {
        acc[a] = std::min(acc[a], values[i][a]);
        acc[half + a] = std::max(acc[half + a], values[i][half + a]);
      }
    }
    out.emplace_back(key, std::move(acc));
  }
};

// ---------------------------------------------------------------------------
// Support-set job (§6, map-only)
// ---------------------------------------------------------------------------

struct SupportSetJobConfig {
  const data::Dataset* dataset;
  const core::Rssc* rssc;
  size_t num_signatures;
};

class SupportSetMapper
    : public Mapper<Record, data::PointId, std::vector<uint32_t>> {
 public:
  explicit SupportSetMapper(const SupportSetJobConfig* config)
      : config_(config) {}

  void Map(const Record& record,
           Emitter<data::PointId, std::vector<uint32_t>>& out) override {
    config_->rssc->Match(config_->dataset->Row(record), bits_);
    ids_.clear();
    core::Rssc::BitsToIds(bits_, config_->num_signatures, ids_);
    if (!ids_.empty()) out.Emit(record, ids_);
  }

 private:
  const SupportSetJobConfig* config_;
  std::vector<uint64_t> bits_;
  std::vector<uint32_t> ids_;
};

}  // namespace

std::vector<Record> MakeRecords(const data::Dataset& dataset) {
  std::vector<Record> records(dataset.num_points());
  for (size_t i = 0; i < records.size(); ++i) {
    records[i] = static_cast<Record>(i);
  }
  return records;
}

Result<std::vector<stats::Histogram>> RunHistogramJob(
    LocalRunner& runner, const data::Dataset& dataset,
    stats::BinningRule rule) {
  const std::vector<Record> records = MakeRecords(dataset);
  const size_t bins = static_cast<size_t>(
      stats::NumBins(rule, std::max<uint64_t>(1, dataset.num_points())));
  HistogramJobConfig config{&dataset, bins};
  ShuffleOptions<int64_t> shuffle;
  shuffle.num_reducers = ReducersForKeys(runner, dataset.num_dims());
  auto run = runner.Run<Record, int64_t, std::vector<uint64_t>,
                        std::pair<int64_t, std::vector<uint64_t>>>(
      "histogram", records,
      [&config] { return std::make_unique<HistogramMapper>(&config); },
      [] { return std::make_unique<CountSumReducer>(); }, shuffle);
  if (!run.ok()) return run.status();
  auto& out = *run;
  std::vector<stats::Histogram> histograms(dataset.num_dims(),
                                           stats::Histogram(bins));
  for (auto& [attr, counts] : out) {
    histograms[static_cast<size_t>(attr)].counts() = std::move(counts);
  }
  return histograms;
}

Result<std::vector<uint64_t>> RunSupportJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<core::Signature>& signatures) {
  if (signatures.empty()) return std::vector<uint64_t>{};
  const std::vector<Record> records = MakeRecords(dataset);
  const core::Rssc rssc(signatures);  // "calculated by the main program"
  SupportJobConfig config{&dataset, &rssc};
  ShuffleOptions<int64_t> shuffle;
  shuffle.num_reducers = 1;  // the job emits a single key
  auto run = runner.Run<Record, int64_t, std::vector<uint64_t>,
                        std::pair<int64_t, std::vector<uint64_t>>>(
      "support-count", records,
      [&config] { return std::make_unique<SupportMapper>(&config); },
      [] { return std::make_unique<CountSumReducer>(); }, shuffle);
  if (!run.ok()) return run.status();
  auto& out = *run;
  std::vector<uint64_t> supports(signatures.size(), 0);
  for (auto& [key, counts] : out) {
    (void)key;
    for (size_t i = 0; i < supports.size() && i < counts.size(); ++i) {
      supports[i] += counts[i];
    }
  }
  return supports;
}

Result<MomentSums> RunMomentJob(LocalRunner& runner,
                                const data::Dataset& dataset,
                                const core::GmmModel& model,
                                const MembershipFn& membership,
                                const char* job_name) {
  const std::vector<Record> records = MakeRecords(dataset);
  MomentJobConfig config{&dataset, &model, &membership};
  ShuffleOptions<int64_t> shuffle;
  // k component keys plus the log-likelihood key.
  shuffle.num_reducers = ReducersForKeys(runner, model.num_components() + 1);
  auto run = runner.Run<Record, int64_t, std::vector<double>, KeyedDoubles>(
      job_name, records,
      [&config] { return std::make_unique<MomentMapper>(&config); },
      [] { return std::make_unique<VectorSumReducer>(); }, shuffle);
  if (!run.ok()) return run.status();
  auto& out = *run;
  MomentSums sums;
  // Driver-side fold of the job output: O(k x dim) doubles, deliberately
  // untracked — the kGmmMatrices scope covers the per-task copies.
  sums.w.assign(model.num_components(), 0.0);  // NOLINT(p3c-untracked-hot-alloc)
  sums.w2.assign(model.num_components(), 0.0);  // NOLINT(p3c-untracked-hot-alloc)
  sums.lsum.assign(  // NOLINT(p3c-untracked-hot-alloc)
      model.num_components(), linalg::Vector(model.dim(), 0.0));
  for (auto& [key, stats] : out) {
    if (key == kLogLikelihoodKey) {
      sums.log_likelihood = stats.empty() ? 0.0 : stats[0];
      continue;
    }
    const auto c = static_cast<size_t>(key);
    sums.w[c] = stats[0];
    sums.w2[c] = stats[1];
    for (size_t j = 0; j < model.dim(); ++j) sums.lsum[c][j] = stats[2 + j];
  }
  return sums;
}

Result<std::vector<linalg::Matrix>> RunCovarianceJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const core::GmmModel& model, const MembershipFn& membership,
    const std::vector<linalg::Vector>& means, const char* job_name) {
  const std::vector<Record> records = MakeRecords(dataset);
  CovarianceJobConfig config{&dataset, &model, &membership, &means};
  ShuffleOptions<int64_t> shuffle;
  shuffle.num_reducers = ReducersForKeys(runner, model.num_components());
  auto run = runner.Run<Record, int64_t, std::vector<double>, KeyedDoubles>(
      job_name, records,
      [&config] { return std::make_unique<CovarianceMapper>(&config); },
      [] { return std::make_unique<VectorSumReducer>(); }, shuffle);
  if (!run.ok()) return run.status();
  auto& out = *run;
  const size_t dim = model.dim();
  std::vector<linalg::Matrix> sums(model.num_components(),
                                   linalg::Matrix(dim, dim));
  for (auto& [key, flat] : out) {
    if (key < 0) continue;
    linalg::Matrix& m = sums[static_cast<size_t>(key)];
    for (size_t i = 0; i < dim && i * dim < flat.size(); ++i) {
      for (size_t j = 0; j < dim; ++j) m(i, j) = flat[i * dim + j];
    }
  }
  return sums;
}

Result<std::vector<MvbBall>> RunMvbBallJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const core::GmmModel& model, const core::GmmEvaluator& evaluator) {
  const std::vector<Record> records = MakeRecords(dataset);
  MvbBallJobConfig config{&dataset, &model, &evaluator};
  ShuffleOptions<int64_t> shuffle;
  shuffle.num_reducers = ReducersForKeys(runner, model.num_components());
  auto run = runner.Run<Record, int64_t, std::vector<double>, KeyedDoubles>(
      "mvb-ball", records,
      [&config] { return std::make_unique<MvbBallMapper>(&config); },
      [] { return std::make_unique<MvbBallReducer>(); }, shuffle);
  if (!run.ok()) return run.status();
  auto& out = *run;
  std::vector<MvbBall> balls(model.num_components());
  for (auto& [key, payload] : out) {
    if (key < 0 || payload.empty()) continue;
    MvbBall& ball = balls[static_cast<size_t>(key)];
    // Driver-side fold, O(k x dim) doubles — deliberately untracked.
    ball.center.assign(  // NOLINT(p3c-untracked-hot-alloc)
        payload.begin(), payload.end() - 1);
    ball.radius = payload.back();
  }
  return balls;
}

Result<std::vector<int32_t>> RunOdJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const core::GmmModel& model, const core::GmmEvaluator& evaluator,
    const std::vector<linalg::Vector>& centers,
    const std::vector<linalg::Cholesky>& factors, double critical) {
  const std::vector<Record> records = MakeRecords(dataset);
  OdJobConfig config{&dataset, &model,   &evaluator,
                     &centers, &factors, critical};
  auto run = runner.RunMapOnly<Record, data::PointId, int32_t>(
      "outlier-detection", records,
      [&config] { return std::make_unique<OdMapper>(&config); });
  if (!run.ok()) return run.status();
  std::vector<int32_t> assignment(dataset.num_points(), -1);
  for (const auto& [point, cluster] : *run) assignment[point] = cluster;
  return assignment;
}

Result<std::vector<std::vector<stats::Histogram>>> RunClusterHistogramJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<int32_t>& membership, size_t num_clusters,
    const std::vector<size_t>& bins_per_cluster) {
  const std::vector<Record> records = MakeRecords(dataset);
  ClusterHistogramJobConfig config{&dataset, &membership, &bins_per_cluster};
  ShuffleOptions<int64_t> shuffle;
  shuffle.num_reducers =
      ReducersForKeys(runner, num_clusters * dataset.num_dims());
  auto run = runner.Run<Record, int64_t, std::vector<uint64_t>,
                        std::pair<int64_t, std::vector<uint64_t>>>(
      "cluster-histograms", records,
      [&config] { return std::make_unique<ClusterHistogramMapper>(&config); },
      [] { return std::make_unique<CountSumReducer>(); }, shuffle);
  if (!run.ok()) return run.status();
  auto& out = *run;
  const size_t d = dataset.num_dims();
  std::vector<std::vector<stats::Histogram>> histograms(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    // Driver-side result histograms; the per-task copies are what the
    // kHistogramBins scope tracks (ClusterHistogramMapper charges them).
    histograms[c].assign(  // NOLINT(p3c-untracked-hot-alloc)
        d, stats::Histogram(bins_per_cluster[c]));
  }
  for (auto& [key, counts] : out) {
    const auto c = static_cast<size_t>(key / static_cast<int64_t>(d));
    const auto attr = static_cast<size_t>(key % static_cast<int64_t>(d));
    histograms[c][attr].counts() = std::move(counts);
  }
  return histograms;
}

Result<std::vector<std::vector<core::Interval>>> RunTighteningJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<int32_t>& membership,
    const std::vector<std::vector<size_t>>& attrs) {
  const std::vector<Record> records = MakeRecords(dataset);
  TighteningJobConfig config{&dataset, &membership, &attrs};
  ShuffleOptions<int64_t> shuffle;
  shuffle.num_reducers = ReducersForKeys(runner, attrs.size());
  auto run = runner.Run<Record, int64_t, std::vector<double>, KeyedDoubles>(
      "interval-tightening", records,
      [&config] { return std::make_unique<TighteningMapper>(&config); },
      [] { return std::make_unique<TighteningReducer>(); }, shuffle);
  if (!run.ok()) return run.status();
  auto& out = *run;
  std::vector<std::vector<core::Interval>> intervals(attrs.size());
  for (auto& [key, payload] : out) {
    if (key < 0) continue;
    const auto c = static_cast<size_t>(key);
    const size_t half = payload.size() / 2;
    // Driver-side result intervals, O(k x attrs) — deliberately untracked.
    intervals[c].resize(half);  // NOLINT(p3c-untracked-hot-alloc)
    for (size_t a = 0; a < half; ++a) {
      intervals[c][a] = core::Interval{attrs[c][a], payload[a],
                                       payload[half + a]};
    }
  }
  return intervals;
}

Result<SupportSetJobResult> RunSupportSetJob(
    LocalRunner& runner, const data::Dataset& dataset,
    const std::vector<core::Signature>& signatures) {
  SupportSetJobResult result;
  // Driver-side result: signature headers plus one int32 per point —
  // an order under the dataset's charged doubles; deliberately untracked.
  result.support_sets.resize(  // NOLINT(p3c-untracked-hot-alloc)
      signatures.size());
  result.unique_assignment.assign(  // NOLINT(p3c-untracked-hot-alloc)
      dataset.num_points(), -1);
  if (signatures.empty()) return result;
  const std::vector<Record> records = MakeRecords(dataset);
  const core::Rssc rssc(signatures);
  SupportSetJobConfig config{&dataset, &rssc, signatures.size()};
  auto run = runner.RunMapOnly<Record, data::PointId, std::vector<uint32_t>>(
      "support-sets", records,
      [&config] { return std::make_unique<SupportSetMapper>(&config); });
  if (!run.ok()) return run.status();
  for (auto& [point, ids] : *run) {
    for (uint32_t id : ids) result.support_sets[id].push_back(point);
    result.unique_assignment[point] =
        ids.size() == 1 ? static_cast<int32_t>(ids[0]) : -2;
  }
  return result;
}

}  // namespace p3c::mr
