#ifndef P3C_MAPREDUCE_STRAGGLER_H_
#define P3C_MAPREDUCE_STRAGGLER_H_

// Straggler detection for the MapReduce engine (DESIGN.md §11): a
// per-runner watchdog thread that enforces wall-clock task deadlines
// and launches Hadoop-style speculative task copies.
//
// The watchdog never touches task state directly — it only invokes the
// `kill` / `launch` closures the runner registered, which flip flags on
// the attempt's CopyControl and cancel its CancellationSource. All
// policy inputs (deadline, slowness threshold, concurrency cap) are
// carried per entry so the watchdog itself is stateless across jobs.
//
// Lock ordering: watchdog `mu_` is taken FIRST, then any lock the kill
// or launch closures take (the attempt race mutex, the cancellation
// state mutex) and the TaskDurationStats lock the speculation check
// reads through. Runner code deregisters an entry (watchdog `mu_`)
// before inspecting race state, never while holding the race mutex.
// The debug lock-order checker enforces these edges by lock name.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/sync.h"

namespace p3c::mr {

/// Completed-attempt durations of one (job, task kind) population —
/// the baseline against which the watchdog judges slowness. Hadoop
/// speculates against the mean progress rate of completed tasks; with
/// no progress reporting in-process, the median completed duration is
/// the robust equivalent (immune to the stragglers themselves).
class TaskDurationStats {
 public:
  void Add(double seconds) {
    MutexLock lock(mu_);
    samples_.push_back(seconds);
  }

  /// Median completed duration, or a negative value while fewer than
  /// `min_samples` completions exist — the estimate is not trusted
  /// until enough siblings have finished (Hadoop's
  /// MINIMUM_COMPLETE_NUMBER_TO_SPECULATE).
  double Median(size_t min_samples) const {
    MutexLock lock(mu_);
    if (samples_.empty() || samples_.size() < std::max<size_t>(1, min_samples)) {
      return -1.0;
    }
    std::vector<double> copy = samples_;
    const size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
    return copy[mid];
  }

  size_t count() const {
    MutexLock lock(mu_);
    return samples_.size();
  }

 private:
  /// Leaf lock, but sits BELOW TaskWatchdog::mu_ in the order graph:
  /// the watchdog's speculation check calls Median() while holding its
  /// own mutex. Nothing is acquired while this lock is held.
  mutable Mutex mu_{"TaskDurationStats::mu_"};
  std::vector<double> samples_ P3C_GUARDED_BY(mu_);
};

/// Monitors in-flight task attempts. One instance per LocalRunner; the
/// thread starts lazily on the first Register, so runners that never
/// enable deadlines or speculation pay nothing.
class TaskWatchdog {
 public:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    Clock::time_point start{};
    /// Wall-clock deadline for this attempt copy; 0 disables. `kill`
    /// must be set when non-zero — it is invoked exactly once, under
    /// the watchdog mutex, when the deadline passes.
    double deadline_seconds = 0.0;
    std::function<void()> kill;
    /// Speculation policy; `launch` empty disables it for this entry.
    /// `launch` is invoked at most once, under the watchdog mutex, when
    /// the attempt has run `slowness_factor ×` the median completed
    /// duration of its population (but never sooner than
    /// `min_runtime_seconds` — near-zero medians must not trigger a
    /// speculation storm) and a concurrency slot is free.
    const TaskDurationStats* stats = nullptr;
    double slowness_factor = 4.0;
    size_t min_samples = 3;
    double min_runtime_seconds = 0.0;
    size_t max_concurrent = 2;
    std::function<void()> launch;
    // Internal state, owned by the watchdog.
    bool killed = false;
    bool speculated = false;
  };

  TaskWatchdog() = default;
  ~TaskWatchdog() { Shutdown(); }

  TaskWatchdog(const TaskWatchdog&) = delete;
  TaskWatchdog& operator=(const TaskWatchdog&) = delete;

  /// Registers an attempt copy; the returned id must be passed to
  /// Deregister when the copy finishes (success or failure). `start`
  /// is stamped here so registration latency never counts against the
  /// deadline.
  uint64_t Register(Entry entry) {
    MutexLock lock(mu_);
    entry.start = Clock::now();
    const uint64_t id = next_id_++;
    entries_.emplace(id, std::move(entry));
    EnsureThreadLocked();
    ++epoch_;
    cv_.NotifyAll();
    return id;
  }

  /// Removes an entry. On return it is guaranteed that neither `kill`
  /// nor `launch` is running or will run for this entry (both execute
  /// under the same mutex), so the caller may inspect the race state
  /// they mutate.
  void Deregister(uint64_t id) {
    MutexLock lock(mu_);
    entries_.erase(id);
  }

  /// Installs a periodic sampler (the heartbeat reporter, DESIGN.md
  /// §15) that runs `fn` on the watchdog thread every
  /// `interval_seconds`, reusing this thread instead of spawning a
  /// second monitor. One sampler at a time (a runner executes jobs
  /// sequentially); installing a new one replaces the old. `fn` runs
  /// under the watchdog mutex, same contract as the kill/launch
  /// closures — keep it short (read counters, format, log).
  void StartSampler(double interval_seconds, std::function<void()> fn) {
    MutexLock lock(mu_);
    sampler_fn_ = std::move(fn);
    sampler_interval_ = interval_seconds;
    sampler_next_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(interval_seconds));
    EnsureThreadLocked();
    ++epoch_;
    cv_.NotifyAll();
  }

  /// Removes the sampler. On return `fn` is not running and will never
  /// run again (it only executes under the mutex held here).
  void StopSampler() {
    MutexLock lock(mu_);
    sampler_fn_ = nullptr;
  }

  /// Called by the runner when a speculative copy finishes, releasing
  /// its concurrency slot (acquired by the watchdog at launch time).
  void OnSpeculativeFinished() {
    MutexLock lock(mu_);
    if (active_speculative_ > 0) --active_speculative_;
    ++epoch_;
    cv_.NotifyAll();
  }

  size_t active_speculative() const {
    MutexLock lock(mu_);
    return active_speculative_;
  }

  /// Stops and joins the watchdog thread. Entries must already be
  /// deregistered (jobs complete before the runner is destroyed).
  void Shutdown() {
    std::thread to_join;
    {
      MutexLock lock(mu_);
      shutdown_ = true;
      ++epoch_;
      cv_.NotifyAll();
      to_join = std::move(thread_);
    }
    if (to_join.joinable()) to_join.join();
  }

 private:
  /// How often the watchdog re-evaluates speculation candidates whose
  /// threshold is not yet computable (median pending) or whose
  /// concurrency slot is taken. Deadlines do not rely on this — their
  /// wake-ups are scheduled exactly.
  static constexpr std::chrono::milliseconds kPollInterval{2};

  void EnsureThreadLocked() P3C_REQUIRES(mu_) {
    if (thread_.joinable()) return;
    shutdown_ = false;
    thread_ = std::thread([this] { Loop(); });
  }

  void Loop() {
    MutexLock lock(mu_);
    while (!shutdown_) {
      const Clock::time_point now = Clock::now();
      // Default wake-up far in the future; tightened below by the
      // nearest deadline / speculation threshold.
      Clock::time_point next_wake = now + std::chrono::seconds(1);
      for (auto& [id, e] : entries_) {
        const double elapsed =
            std::chrono::duration<double>(now - e.start).count();
        if (e.deadline_seconds > 0.0 && !e.killed) {
          if (elapsed >= e.deadline_seconds) {
            e.killed = true;
            if (e.kill) e.kill();
          } else {
            next_wake = std::min(
                next_wake,
                e.start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  e.deadline_seconds)));
          }
        }
        if (e.launch && e.stats != nullptr && !e.speculated && !e.killed) {
          const double median = e.stats->Median(e.min_samples);
          if (median < 0.0) {
            // Not enough completed siblings yet; re-check shortly.
            next_wake = std::min(next_wake, now + kPollInterval);
            continue;
          }
          const double threshold = std::max(
              e.min_runtime_seconds,
              std::max(1.0, e.slowness_factor) * median);
          if (elapsed < threshold) {
            next_wake = std::min(
                next_wake,
                e.start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(threshold)));
          } else if (active_speculative_ < e.max_concurrent) {
            e.speculated = true;
            ++active_speculative_;
            e.launch();
          } else {
            // Cap reached; OnSpeculativeFinished notifies, but poll as
            // a backstop.
            next_wake = std::min(next_wake, now + kPollInterval);
          }
        }
      }
      if (sampler_fn_) {
        if (now >= sampler_next_) {
          sampler_fn_();
          sampler_next_ =
              now + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(sampler_interval_));
        }
        next_wake = std::min(next_wake, sampler_next_);
      }
      // Predicate-looped wait (spurious wakeups re-wait): wake at
      // `next_wake`, or as soon as any state change bumped `epoch_` —
      // a newly registered entry may carry an *earlier* deadline than
      // the one this pass computed, so a plain sleep-to-next_wake
      // would miss it.
      const uint64_t seen = epoch_;
      cv_.WaitUntil(mu_, next_wake, [this, seen]() P3C_REQUIRES(mu_) {
        return shutdown_ || epoch_ != seen;
      });
    }
  }

  mutable Mutex mu_{"TaskWatchdog::mu_"};
  CondVar cv_;
  std::thread thread_ P3C_GUARDED_BY(mu_);
  bool shutdown_ P3C_GUARDED_BY(mu_) = false;
  /// Bumped (under mu_) by every state change the Loop must react to;
  /// the Loop's wait predicate re-waits until it moves or shutdown.
  uint64_t epoch_ P3C_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ P3C_GUARDED_BY(mu_) = 1;
  size_t active_speculative_ P3C_GUARDED_BY(mu_) = 0;
  std::unordered_map<uint64_t, Entry> entries_ P3C_GUARDED_BY(mu_);
  // Heartbeat sampler state, all under mu_.
  std::function<void()> sampler_fn_ P3C_GUARDED_BY(mu_);
  double sampler_interval_ P3C_GUARDED_BY(mu_) = 0.0;
  Clock::time_point sampler_next_ P3C_GUARDED_BY(mu_){};
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_STRAGGLER_H_
