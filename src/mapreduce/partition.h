#ifndef P3C_MAPREDUCE_PARTITION_H_
#define P3C_MAPREDUCE_PARTITION_H_

// Hadoop-style partitioned shuffle for the in-process engine (DESIGN.md
// §9): a Partitioner routes every intermediate key to one of R reduce
// partitions at map-commit time, each partition holds one key-sorted run
// per map task, and MergePartition k-way merges those runs into a
// grouped, contiguous value buffer that reducers read zero-copy via
// std::span. The per-partition merges are independent, so the shuffle
// parallelizes across partitions instead of funnelling every pair
// through one global sort.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace p3c::mr {

/// splitmix64 finalizer — the engine's standard integer mix (also used by
/// SeededFaultInjector). Deterministic across platforms, unlike
/// std::hash, so partition assignment (and thus per-partition metrics)
/// is reproducible everywhere.
inline uint64_t ShuffleMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes, finalized with ShuffleMix64.
inline uint64_t ShuffleHashBytes(const char* data, size_t len) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ static_cast<unsigned char>(data[i])) * 1099511628211ull;
  }
  return ShuffleMix64(h);
}

/// Deterministic key hash behind HashPartitioner. Overload/extend for
/// custom key types (or supply a custom Partitioner instead).
template <typename K>
  requires std::is_integral_v<K> || std::is_enum_v<K>
uint64_t ShuffleKeyHash(const K& key) {
  return ShuffleMix64(static_cast<uint64_t>(key));
}

inline uint64_t ShuffleKeyHash(const std::string& key) {
  return ShuffleHashBytes(key.data(), key.size());
}

inline uint64_t ShuffleKeyHash(double key) {
  return ShuffleMix64(std::bit_cast<uint64_t>(key));
}

inline uint64_t ShuffleKeyHash(float key) {
  return ShuffleMix64(std::bit_cast<uint32_t>(key));
}

/// Routes intermediate keys to reduce partitions — Hadoop's Partitioner
/// contract. Implementations must be pure functions of (key,
/// num_partitions): equal keys MUST map to the same partition (grouping
/// correctness depends on it) and the result must be < num_partitions.
/// Called concurrently from map-commit paths; must be thread-safe.
template <typename K>
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual size_t Partition(const K& key, size_t num_partitions) const = 0;
};

/// Default partitioner: deterministic hash modulo partition count (the
/// analog of Hadoop's HashPartitioner).
template <typename K>
class HashPartitioner : public Partitioner<K> {
 public:
  size_t Partition(const K& key, size_t num_partitions) const override {
    return static_cast<size_t>(ShuffleKeyHash(key) % num_partitions);
  }
};

/// One merged shuffle partition: sorted group keys over a contiguous
/// value buffer. Group g owns values [group_offsets[g],
/// group_offsets[g+1]); reducers read them through group_values() as
/// immutable spans, which is what makes reduce attempts retryable
/// without copying.
template <typename K, typename V>
struct MergedPartition {
  std::vector<K> group_keys;
  std::vector<size_t> group_offsets;  ///< size num_groups()+1 once merged
  std::vector<V> values;

  size_t num_groups() const { return group_keys.size(); }
  const K& key(size_t g) const { return group_keys[g]; }
  std::span<const V> group_values(size_t g) const {
    return std::span<const V>(values).subspan(
        group_offsets[g], group_offsets[g + 1] - group_offsets[g]);
  }
};

/// Partitioned shuffle buffers of one job: num_partitions × num_maps
/// key-sorted runs plus their merged form. Concurrency contract:
/// CommitMapOutput may run concurrently for distinct map_index values
/// and MergePartition for distinct partitions (each touches disjoint
/// slots); the two stages are separated by the engine's map barrier.
template <typename K, typename V>
class ShuffleBuffers {
 public:
  ShuffleBuffers(size_t num_partitions, size_t num_maps)
      : num_partitions_(std::max<size_t>(1, num_partitions)),
        num_maps_(num_maps),
        runs_(num_partitions_ * num_maps),
        merged_(num_partitions_) {}

  size_t num_partitions() const { return num_partitions_; }

  /// Routes one committed map task's output into per-partition sorted
  /// runs. Buckets and sorts into locals first and installs with
  /// noexcept moves only, so a throwing Partitioner leaves the buffers
  /// untouched (task-attempt isolation). The per-key emit order of the
  /// map task survives: the sort is stable and pairs are bucketed in
  /// emission order.
  void CommitMapOutput(size_t map_index, std::vector<std::pair<K, V>> pairs,
                       const Partitioner<K>& partitioner) {
    std::vector<std::vector<std::pair<K, V>>> buckets(num_partitions_);
    if (num_partitions_ == 1) {
      buckets[0] = std::move(pairs);
    } else {
      for (auto& kv : pairs) {
        const size_t p = partitioner.Partition(kv.first, num_partitions_);
        if (p >= num_partitions_) {
          throw std::out_of_range(
              "Partitioner returned partition " + std::to_string(p) +
              " for " + std::to_string(num_partitions_) + " partitions");
        }
        buckets[p].push_back(std::move(kv));
      }
    }
    for (auto& bucket : buckets) {
      std::stable_sort(
          bucket.begin(), bucket.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    for (size_t p = 0; p < num_partitions_; ++p) {
      runs_[p * num_maps_ + map_index] = std::move(buckets[p]);
    }
  }

  /// K-way merges partition p's runs into its MergedPartition, grouping
  /// equal keys. Ties between runs break toward the lower map index, so
  /// within a key the values appear in (map task, emit order) order —
  /// exactly the order the former global stable sort produced. Consumes
  /// the runs (values are moved, run storage is released).
  void MergePartition(size_t p) {
    auto runs = std::span(runs_).subspan(p * num_maps_, num_maps_);
    MergedPartition<K, V>& out = merged_[p];
    size_t total = 0;
    for (const auto& run : runs) total += run.size();
    out.values.reserve(total);

    struct Cursor {
      size_t run;
      size_t pos;
    };
    std::vector<Cursor> heap;
    for (size_t m = 0; m < runs.size(); ++m) {
      if (!runs[m].empty()) heap.push_back(Cursor{m, 0});
    }
    // Min-heap via std::*_heap with an inverted comparator.
    const auto after = [&runs](const Cursor& a, const Cursor& b) {
      const K& ka = runs[a.run][a.pos].first;
      const K& kb = runs[b.run][b.pos].first;
      if (ka < kb) return false;
      if (kb < ka) return true;
      return a.run > b.run;
    };
    std::make_heap(heap.begin(), heap.end(), after);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), after);
      Cursor cur = heap.back();
      heap.pop_back();
      auto& kv = runs[cur.run][cur.pos];
      if (out.group_keys.empty() || out.group_keys.back() < kv.first) {
        out.group_offsets.push_back(out.values.size());
        out.group_keys.push_back(std::move(kv.first));
      }
      out.values.push_back(std::move(kv.second));
      if (++cur.pos < runs[cur.run].size()) {
        heap.push_back(cur);
        std::push_heap(heap.begin(), heap.end(), after);
      }
    }
    out.group_offsets.push_back(out.values.size());
    for (auto& run : runs) run = {};
  }

  /// Merged form of partition p; valid after MergePartition(p).
  const MergedPartition<K, V>& partition(size_t p) const {
    return merged_[p];
  }

 private:
  size_t num_partitions_;
  size_t num_maps_;
  std::vector<std::vector<std::pair<K, V>>> runs_;  ///< [p * num_maps_ + m]
  std::vector<MergedPartition<K, V>> merged_;
};

/// K-way merge of key-sorted pair runs into one sorted vector (ties
/// break toward the lower run index). The map-only shuffle: per-split
/// runs are sorted in parallel at map-commit time and only the merge is
/// left, replacing the former O(n log n) global sort with O(n log M).
template <typename K, typename V>
std::vector<std::pair<K, V>> MergeSortedRuns(
    std::vector<std::vector<std::pair<K, V>>> runs) {
  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  std::vector<std::pair<K, V>> out;
  out.reserve(total);

  struct Cursor {
    size_t run;
    size_t pos;
  };
  std::vector<Cursor> heap;
  for (size_t m = 0; m < runs.size(); ++m) {
    if (!runs[m].empty()) heap.push_back(Cursor{m, 0});
  }
  const auto after = [&runs](const Cursor& a, const Cursor& b) {
    const K& ka = runs[a.run][a.pos].first;
    const K& kb = runs[b.run][b.pos].first;
    if (ka < kb) return false;
    if (kb < ka) return true;
    return a.run > b.run;
  };
  std::make_heap(heap.begin(), heap.end(), after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    Cursor cur = heap.back();
    heap.pop_back();
    out.push_back(std::move(runs[cur.run][cur.pos]));
    if (++cur.pos < runs[cur.run].size()) {
      heap.push_back(cur);
      std::push_heap(heap.begin(), heap.end(), after);
    }
  }
  return out;
}

/// Per-job shuffle overrides, passed alongside the task factories.
template <typename K>
struct ShuffleOptions {
  /// Partition routing; null selects the engine's HashPartitioner<K>.
  /// The pointee must outlive the job and be thread-safe.
  const Partitioner<K>* partitioner = nullptr;
  /// Reduce partitions for this job; 0 defers to
  /// RunnerOptions::num_reducers (which resolves 0 to the worker count).
  /// Job wrappers that know their key cardinality cap this to avoid
  /// empty partitions (e.g. the support job emits a single key).
  size_t num_reducers = 0;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_PARTITION_H_
