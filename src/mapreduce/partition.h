#ifndef P3C_MAPREDUCE_PARTITION_H_
#define P3C_MAPREDUCE_PARTITION_H_

// Hadoop-style partitioned shuffle for the in-process engine (DESIGN.md
// §9, §14): a Partitioner routes every intermediate key to one of R
// reduce partitions at map-commit time, each partition holds one
// key-sorted run per map task, and a staged merge (plan -> chunk merges
// -> finalize) turns those runs into a grouped, contiguous value buffer
// that reducers read zero-copy via std::span.
//
// The merge is *chunked*: PlanMerge splits each partition's key range at
// sampled splitter keys into chunks of roughly target_chunk_records
// records, every (partition, chunk) merges independently (a stable
// pairwise ladder of std::merge passes — sequential streaming instead of
// a per-element heap), and FinalizePartition stitches the chunk
// fragments back in key order. Chunk boundaries are lower-bound key
// boundaries, so equal keys never straddle chunks and the merged output
// is byte-identical for every chunk plan. The plan depends only on the
// data and the chunk-size target — never on the worker count — which is
// what keeps shuffle work flat as threads are added (§14's scaling
// postmortem).

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/resource.h"

namespace p3c::mr {

/// splitmix64 finalizer — the engine's standard integer mix (also used by
/// SeededFaultInjector). Deterministic across platforms, unlike
/// std::hash, so partition assignment (and thus per-partition metrics)
/// is reproducible everywhere.
inline uint64_t ShuffleMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes, finalized with ShuffleMix64.
inline uint64_t ShuffleHashBytes(const char* data, size_t len) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ static_cast<unsigned char>(data[i])) * 1099511628211ull;
  }
  return ShuffleMix64(h);
}

/// Deterministic key hash behind HashPartitioner. Overload/extend for
/// custom key types (or supply a custom Partitioner instead).
template <typename K>
  requires std::is_integral_v<K> || std::is_enum_v<K>
uint64_t ShuffleKeyHash(const K& key) {
  return ShuffleMix64(static_cast<uint64_t>(key));
}

inline uint64_t ShuffleKeyHash(const std::string& key) {
  return ShuffleHashBytes(key.data(), key.size());
}

inline uint64_t ShuffleKeyHash(double key) {
  return ShuffleMix64(std::bit_cast<uint64_t>(key));
}

inline uint64_t ShuffleKeyHash(float key) {
  return ShuffleMix64(std::bit_cast<uint32_t>(key));
}

/// Routes intermediate keys to reduce partitions — Hadoop's Partitioner
/// contract. Implementations must be pure functions of (key,
/// num_partitions): equal keys MUST map to the same partition (grouping
/// correctness depends on it) and the result must be < num_partitions.
/// Called concurrently from map-commit paths; must be thread-safe.
template <typename K>
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual size_t Partition(const K& key, size_t num_partitions) const = 0;
};

/// Default partitioner: deterministic hash modulo partition count (the
/// analog of Hadoop's HashPartitioner).
template <typename K>
class HashPartitioner : public Partitioner<K> {
 public:
  size_t Partition(const K& key, size_t num_partitions) const override {
    return static_cast<size_t>(ShuffleKeyHash(key) % num_partitions);
  }
};

/// One merged shuffle partition: sorted group keys over a contiguous
/// value buffer. Group g owns values [group_offsets[g],
/// group_offsets[g+1]); reducers read them through group_values() as
/// immutable spans, which is what makes reduce attempts retryable
/// without copying.
template <typename K, typename V>
struct MergedPartition {
  std::vector<K> group_keys;
  std::vector<size_t> group_offsets;  ///< size num_groups()+1 once merged
  std::vector<V> values;

  size_t num_groups() const { return group_keys.size(); }
  const K& key(size_t g) const { return group_keys[g]; }
  std::span<const V> group_values(size_t g) const {
    return std::span<const V>(values).subspan(
        group_offsets[g], group_offsets[g + 1] - group_offsets[g]);
  }
};

namespace shuffle_internal {

/// Stable pairwise-ladder merge of key-sorted slices into one key-sorted
/// vector, moving elements out of the slices. Slices must be ordered by
/// run (map-task) index: std::merge keeps first-range elements first on
/// equal keys and adjacent pairing preserves slice order across rounds,
/// so within a key the result is in (run index, in-run order) order —
/// the same tie-break the former per-element k-way heap produced, at
/// sequential-streaming cost (log2(#slices) linear passes).
template <typename K, typename V>
std::vector<std::pair<K, V>> LadderMergeMove(
    std::span<const std::span<std::pair<K, V>>> slices) {
  using Pair = std::pair<K, V>;
  const auto key_less = [](const Pair& a, const Pair& b) {
    return a.first < b.first;
  };
  const auto merge_two = [&key_less](auto first1, auto last1, auto first2,
                                     auto last2, size_t total) {
    std::vector<Pair> merged;
    // Merge scratch is deliberately untracked: elements move out of the
    // already-charged runs, so the ladder's transient peak is bounded by
    // the run bytes runs_charge_ reports (DESIGN.md §15).
    merged.reserve(total);  // NOLINT(p3c-untracked-hot-alloc)
    std::merge(std::move_iterator(first1), std::move_iterator(last1),
               std::move_iterator(first2), std::move_iterator(last2),
               std::back_inserter(merged), key_less);
    return merged;
  };

  std::vector<std::vector<Pair>> level;
  // Vector-of-vectors headers, O(#slices) — noise next to the payloads.
  level.reserve(slices.size() / 2 + 1);  // NOLINT(p3c-untracked-hot-alloc)
  for (size_t i = 0; i + 1 < slices.size(); i += 2) {
    level.push_back(merge_two(slices[i].begin(), slices[i].end(),
                              slices[i + 1].begin(), slices[i + 1].end(),
                              slices[i].size() + slices[i + 1].size()));
  }
  if (slices.size() % 2 == 1) {
    const std::span<Pair> last = slices.back();
    std::vector<Pair> tail;
    // Moves the odd slice out of the charged runs; see merge_two above.
    tail.reserve(last.size());  // NOLINT(p3c-untracked-hot-alloc)
    std::move(last.begin(), last.end(), std::back_inserter(tail));
    level.push_back(std::move(tail));
  }
  if (level.empty()) return {};
  while (level.size() > 1) {
    std::vector<std::vector<Pair>> next;
    // Headers again, O(#slices); payload bytes stay covered by the runs.
    next.reserve(level.size() / 2 + 1);  // NOLINT(p3c-untracked-hot-alloc)
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(merge_two(level[i].begin(), level[i].end(),
                               level[i + 1].begin(), level[i + 1].end(),
                               level[i].size() + level[i + 1].size()));
      level[i] = {};
      level[i + 1] = {};
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

}  // namespace shuffle_internal

/// Partitioned shuffle buffers of one job: num_partitions × num_maps
/// key-sorted runs plus their merged form.
///
/// Stage protocol (the engine's shuffle phase):
///   1. CommitMapOutput — concurrent for distinct map_index values
///      (disjoint slots, lock-free); separated from the merge stages by
///      the map barrier.
///   2. PlanMerge — concurrent for distinct partitions.
///   3. FinishPlan — serial; flattens the per-partition chunk lists.
///   4. MergeChunk — concurrent for distinct chunk ids (every chunk
///      writes only its own fragment).
///   5. ReleaseRuns — serial; all slices have been consumed.
///   6. FinalizePartition — concurrent for distinct partitions.
/// Every stage boundary is a ParallelFor barrier in the runner.
template <typename K, typename V>
class ShuffleBuffers {
 public:
  ShuffleBuffers(size_t num_partitions, size_t num_maps)
      : num_partitions_(std::max<size_t>(1, num_partitions)),
        num_maps_(num_maps),
        runs_(num_partitions_ * num_maps),
        plans_(num_partitions_),
        merged_(num_partitions_) {}

  size_t num_partitions() const { return num_partitions_; }

  /// Routes one committed map task's output into per-partition sorted
  /// runs. Routing happens before anything is installed and the final
  /// installs are noexcept moves, so a throwing Partitioner leaves the
  /// buffers untouched (task-attempt isolation). Buckets are reserved at
  /// their exact final size — the map-commit path does no growth
  /// reallocation. The per-key emit order of the map task survives: the
  /// scatter keeps emission order and the sort is stable.
  void CommitMapOutput(size_t map_index, std::vector<std::pair<K, V>> pairs,
                       const Partitioner<K>& partitioner) {
    const size_t committed_pairs = pairs.size();
    std::vector<std::vector<std::pair<K, V>>> buckets(num_partitions_);
    if (num_partitions_ == 1) {
      buckets[0] = std::move(pairs);
    } else {
      std::vector<uint32_t> route(pairs.size());
      std::vector<size_t> counts(num_partitions_, 0);
      for (size_t i = 0; i < pairs.size(); ++i) {
        const size_t p =
            partitioner.Partition(pairs[i].first, num_partitions_);
        if (p >= num_partitions_) {
          throw std::out_of_range(
              "Partitioner returned partition " + std::to_string(p) +
              " for " + std::to_string(num_partitions_) + " partitions");
        }
        route[i] = static_cast<uint32_t>(p);
        ++counts[p];
      }
      for (size_t p = 0; p < num_partitions_; ++p) {
        buckets[p].reserve(counts[p]);
      }
      for (size_t i = 0; i < pairs.size(); ++i) {
        buckets[route[i]].push_back(std::move(pairs[i]));
      }
    }
    for (auto& bucket : buckets) {
      std::stable_sort(
          bucket.begin(), bucket.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    for (size_t p = 0; p < num_partitions_; ++p) {
      runs_[p * num_maps_ + map_index] = std::move(buckets[p]);
    }
    // Top-level run bytes (DESIGN.md §15: shallow accounting — element
    // payloads behind pointers show up in the RSS drift gauge instead).
    runs_charge_.Add(static_cast<int64_t>(committed_pairs *
                                          sizeof(std::pair<K, V>)));
  }

  /// Stage 2: splits partition p's merge into chunks of roughly
  /// target_chunk_records records (0 means one chunk). Splitter keys are
  /// sampled run quantiles; slice boundaries are lower_bound positions,
  /// so equal keys land in exactly one chunk and the eventual output is
  /// independent of the chunk plan. Deterministic: a pure function of
  /// the run contents and the target, never of the worker count.
  void PlanMerge(size_t p, size_t target_chunk_records) {
    const std::span<std::vector<std::pair<K, V>>> runs = RunSpan(p);
    PartitionPlan& plan = plans_[p];
    size_t total = 0;
    for (const auto& run : runs) total += run.size();
    size_t num_chunks =
        target_chunk_records == 0
            ? 1
            : std::max<size_t>(1, total / target_chunk_records);
    num_chunks = std::min(num_chunks, std::max<size_t>(1, total));
    plan.fragments.clear();
    // Plan metadata is O(chunks x maps) size_t bookkeeping — orders of
    // magnitude under the record payloads the charges track.
    plan.fragments.resize(num_chunks);  // NOLINT(p3c-untracked-hot-alloc)
    plan.bounds.assign(  // NOLINT(p3c-untracked-hot-alloc)
        (num_chunks + 1) * num_maps_, 0);
    for (size_t m = 0; m < num_maps_; ++m) {
      plan.bounds[num_chunks * num_maps_ + m] = runs[m].size();
    }
    if (num_chunks == 1) return;

    std::vector<K> sample;
    // Splitter sample: one key per (run, chunk boundary) — plan-sized.
    sample.reserve(  // NOLINT(p3c-untracked-hot-alloc)
        num_maps_ * (num_chunks - 1));
    for (const auto& run : runs) {
      if (run.empty()) continue;
      for (size_t c = 1; c < num_chunks; ++c) {
        sample.push_back(run[c * run.size() / num_chunks].first);
      }
    }
    std::sort(sample.begin(), sample.end());
    for (size_t c = 1; c < num_chunks; ++c) {
      const K& splitter = sample[c * sample.size() / num_chunks];
      for (size_t m = 0; m < num_maps_; ++m) {
        plan.bounds[c * num_maps_ + m] = static_cast<size_t>(
            std::lower_bound(runs[m].begin(), runs[m].end(), splitter,
                             [](const std::pair<K, V>& kv, const K& key) {
                               return kv.first < key;
                             }) -
            runs[m].begin());
      }
    }
  }

  /// Stage 3: flattens all planned chunks into one global id space
  /// (partition-major, deterministic) and returns the total chunk count.
  size_t FinishPlan() {
    chunk_index_.clear();
    for (size_t p = 0; p < num_partitions_; ++p) {
      for (size_t c = 0; c < plans_[p].fragments.size(); ++c) {
        chunk_index_.emplace_back(static_cast<uint32_t>(p),
                                  static_cast<uint32_t>(c));
      }
    }
    return chunk_index_.size();
  }

  /// Partition owning global chunk id `chunk` (metrics attribution).
  size_t ChunkPartition(size_t chunk) const {
    return chunk_index_[chunk].first;
  }

  /// Stage 4: ladder-merges one chunk's run slices into its fragment.
  void MergeChunk(size_t chunk) {
    const auto [p, c] = chunk_index_[chunk];
    const std::span<std::vector<std::pair<K, V>>> runs = RunSpan(p);
    PartitionPlan& plan = plans_[p];
    const size_t* lo = plan.bounds.data() + size_t{c} * num_maps_;
    const size_t* hi = lo + num_maps_;
    std::vector<std::span<std::pair<K, V>>> slices;
    slices.reserve(num_maps_);
    for (size_t m = 0; m < num_maps_; ++m) {
      if (hi[m] > lo[m]) {
        slices.push_back(
            std::span(runs[m]).subspan(lo[m], hi[m] - lo[m]));
      }
    }
    plan.fragments[c] = shuffle_internal::LadderMergeMove<K, V>(slices);
    merged_charge_.Add(static_cast<int64_t>(plan.fragments[c].size() *
                                            sizeof(std::pair<K, V>)));
  }

  /// Stage 5: frees all run storage (every slice has been moved out).
  void ReleaseRuns() {
    for (auto& run : runs_) run = {};
    runs_charge_.ReleaseAll();
  }

  /// Stage 6: stitches partition p's chunk fragments (already in global
  /// key order) into its MergedPartition, grouping equal keys — the same
  /// grouping scan the former heap merge did inline. Releases fragment
  /// and plan storage as it goes.
  void FinalizePartition(size_t p) {
    PartitionPlan& plan = plans_[p];
    MergedPartition<K, V>& out = merged_[p];
    size_t total = 0;
    for (const auto& fragment : plan.fragments) total += fragment.size();
    out.values.reserve(total);
    for (auto& fragment : plan.fragments) {
      for (auto& kv : fragment) {
        if (out.group_keys.empty() || out.group_keys.back() < kv.first) {
          out.group_offsets.push_back(out.values.size());
          out.group_keys.push_back(std::move(kv.first));
        }
        out.values.push_back(std::move(kv.second));
      }
      fragment = {};
    }
    out.group_offsets.push_back(out.values.size());
    plan = PartitionPlan{};
    // Swap the accounting from chunk fragments to the merged form:
    // charge the MergedPartition's buffers first so the stitch-time
    // overlap registers in the peak, then release the fragment bytes.
    merged_charge_.Add(static_cast<int64_t>(
        out.values.capacity() * sizeof(V) +
        out.group_keys.capacity() * sizeof(K) +
        out.group_offsets.capacity() * sizeof(size_t)));
    merged_charge_.Sub(
        static_cast<int64_t>(total * sizeof(std::pair<K, V>)));
  }

  /// All six stages for partition p, serially — the single-threaded
  /// convenience used by tests that drive ShuffleBuffers directly.
  void MergePartition(size_t p, size_t target_chunk_records = 0) {
    PlanMerge(p, target_chunk_records);
    const std::span<std::vector<std::pair<K, V>>> runs = RunSpan(p);
    PartitionPlan& plan = plans_[p];
    const size_t saved = chunk_index_.size();
    for (size_t c = 0; c < plan.fragments.size(); ++c) {
      chunk_index_.emplace_back(static_cast<uint32_t>(p),
                                static_cast<uint32_t>(c));
      MergeChunk(chunk_index_.size() - 1);
    }
    chunk_index_.resize(saved);
    for (auto& run : runs) run = {};
    FinalizePartition(p);
  }

  /// Merged form of partition p; valid after FinalizePartition(p).
  const MergedPartition<K, V>& partition(size_t p) const {
    return merged_[p];
  }

 private:
  struct PartitionPlan {
    /// (num_chunks + 1) rows of num_maps_ slice-begin indices; row c is
    /// chunk c's per-run begin, row num_chunks holds the run sizes.
    std::vector<size_t> bounds;
    /// Chunk merge outputs, in key order across the vector.
    std::vector<std::vector<std::pair<K, V>>> fragments;
  };

  std::span<std::vector<std::pair<K, V>>> RunSpan(size_t p) {
    return std::span(runs_).subspan(p * num_maps_, num_maps_);
  }

  size_t num_partitions_;
  size_t num_maps_;
  std::vector<std::vector<std::pair<K, V>>> runs_;  ///< [p * num_maps_ + m]
  std::vector<PartitionPlan> plans_;
  std::vector<std::pair<uint32_t, uint32_t>> chunk_index_;
  std::vector<MergedPartition<K, V>> merged_;
  /// Scoped accounting for the two shuffle lifetimes (DESIGN.md §15):
  /// sorted runs (released at ReleaseRuns) and fragments + merged
  /// partitions (released when the buffers die with the job). Their
  /// destructors balance whatever is still outstanding.
  resource::ArenaCharge runs_charge_{resource::MemScope::kShuffleRuns};
  resource::ArenaCharge merged_charge_{resource::MemScope::kShuffleMerged};
};

/// Merge of key-sorted pair runs into one sorted vector (ties break
/// toward the lower run index). The map-only shuffle: per-split runs are
/// sorted in parallel at map-commit time and only the merge is left,
/// replacing the former O(n log n) global sort with log2(M) sequential
/// std::merge passes.
template <typename K, typename V>
std::vector<std::pair<K, V>> MergeSortedRuns(
    std::vector<std::vector<std::pair<K, V>>> runs) {
  std::vector<std::span<std::pair<K, V>>> slices;
  slices.reserve(runs.size());
  for (auto& run : runs) {
    if (!run.empty()) slices.push_back(std::span(run));
  }
  return shuffle_internal::LadderMergeMove<K, V>(slices);
}

/// Per-job shuffle overrides, passed alongside the task factories.
template <typename K>
struct ShuffleOptions {
  /// Partition routing; null selects the engine's HashPartitioner<K>.
  /// The pointee must outlive the job and be thread-safe.
  const Partitioner<K>* partitioner = nullptr;
  /// Reduce partitions for this job; 0 defers to
  /// RunnerOptions::num_reducers (which resolves 0 to the worker count).
  /// Job wrappers that know their key cardinality cap this to avoid
  /// empty partitions (e.g. the support job emits a single key).
  size_t num_reducers = 0;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_PARTITION_H_
