#include "src/mapreduce/metrics.h"

#include "src/common/string_util.h"

namespace p3c::mr {

double MetricsRegistry::TotalSeconds() const {
  double acc = 0.0;
  for (const auto& j : jobs_) acc += j.total_seconds;
  return acc;
}

uint64_t MetricsRegistry::TotalShuffleBytes() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.shuffle_bytes;
  return acc;
}

uint64_t MetricsRegistry::TotalInputRecords() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.input_records;
  return acc;
}

std::string MetricsRegistry::ToString() const {
  std::string out = StringPrintf("%-34s %8s %6s %12s %12s %10s\n", "job",
                                 "splits", "red.", "input", "shuffled(B)",
                                 "time(s)");
  for (const auto& j : jobs_) {
    out += StringPrintf("%-34s %8zu %6zu %12llu %12llu %10.4f\n",
                        j.job_name.c_str(), j.num_splits, j.num_reducers,
                        static_cast<unsigned long long>(j.input_records),
                        static_cast<unsigned long long>(j.shuffle_bytes),
                        j.total_seconds);
  }
  out += StringPrintf("TOTAL: %zu jobs, %llu input records, %llu shuffle "
                      "bytes, %.4f s\n",
                      jobs_.size(),
                      static_cast<unsigned long long>(TotalInputRecords()),
                      static_cast<unsigned long long>(TotalShuffleBytes()),
                      TotalSeconds());
  return out;
}

}  // namespace p3c::mr
