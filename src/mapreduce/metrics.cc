#include "src/mapreduce/metrics.h"

#include "src/common/string_util.h"

namespace p3c::mr {

double MetricsRegistry::TotalSeconds() const {
  double acc = 0.0;
  for (const auto& j : jobs_) acc += j.total_seconds;
  return acc;
}

uint64_t MetricsRegistry::TotalShuffleBytes() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.shuffle_bytes;
  return acc;
}

uint64_t MetricsRegistry::TotalTaskFailures() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.task_failures;
  return acc;
}

uint64_t MetricsRegistry::TotalRetriedTasks() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.retried_tasks;
  return acc;
}

uint64_t MetricsRegistry::TotalInputRecords() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.input_records;
  return acc;
}

std::string MetricsRegistry::ToString() const {
  std::string out = StringPrintf("%-34s %8s %6s %12s %12s %6s %6s %6s %10s\n",
                                 "job", "splits", "red.", "input",
                                 "shuffled(B)", "att.", "fail.", "skew",
                                 "time(s)");
  for (const auto& j : jobs_) {
    out += StringPrintf(
        "%-34s %8zu %6zu %12llu %12llu %6llu %6llu %6.2f %10.4f%s\n",
        j.job_name.c_str(), j.num_splits, j.num_reducers,
        static_cast<unsigned long long>(j.input_records),
        static_cast<unsigned long long>(j.shuffle_bytes),
        static_cast<unsigned long long>(j.task_attempts),
        static_cast<unsigned long long>(j.task_failures), j.partition_skew,
        j.total_seconds, j.succeeded ? "" : "  FAILED");
  }
  out += StringPrintf("TOTAL: %zu jobs, %llu input records, %llu shuffle "
                      "bytes, %llu failed attempts, %llu retried tasks, "
                      "%.4f s\n",
                      jobs_.size(),
                      static_cast<unsigned long long>(TotalInputRecords()),
                      static_cast<unsigned long long>(TotalShuffleBytes()),
                      static_cast<unsigned long long>(TotalTaskFailures()),
                      static_cast<unsigned long long>(TotalRetriedTasks()),
                      TotalSeconds());
  return out;
}

}  // namespace p3c::mr
