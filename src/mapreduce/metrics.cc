#include "src/mapreduce/metrics.h"

#include <cmath>

#include "src/common/string_util.h"

namespace p3c::mr {

double MetricsRegistry::TotalSeconds() const {
  double acc = 0.0;
  for (const auto& j : jobs_) acc += j.total_seconds;
  return acc;
}

uint64_t MetricsRegistry::TotalShuffleBytes() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.shuffle_bytes;
  return acc;
}

uint64_t MetricsRegistry::TotalTaskFailures() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.task_failures;
  return acc;
}

uint64_t MetricsRegistry::TotalRetriedTasks() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.retried_tasks;
  return acc;
}

uint64_t MetricsRegistry::TotalSpeculativeAttempts() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.speculative_attempts;
  return acc;
}

uint64_t MetricsRegistry::TotalKilledAttempts() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.killed_attempts;
  return acc;
}

uint64_t MetricsRegistry::TotalDeadlineExceeded() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.deadline_exceeded;
  return acc;
}

uint64_t MetricsRegistry::TotalInputRecords() const {
  uint64_t acc = 0;
  for (const auto& j : jobs_) acc += j.input_records;
  return acc;
}

MetricBag MetricsRegistry::MergedCounters() const {
  MetricBag merged;
  for (const auto& j : jobs_) merged.MergeFrom(j.counters);
  return merged;
}

std::string MetricsRegistry::ToString() const {
  std::string out = StringPrintf(
      "%-34s %8s %6s %12s %12s %6s %6s %6s %6s %6s %6s %6s %10s\n", "job",
      "splits", "red.", "input", "shuffled(B)", "att.", "fail.", "retr.",
      "spec.", "kill.", "ddl.", "skew", "time(s)");
  for (const auto& j : jobs_) {
    // Map-only jobs have no shuffle partitions; print "-" instead of a
    // meaningless 0.00 skew so the column stays readable either way.
    const std::string skew = j.partition_records.empty()
                                 ? std::string("     -")
                                 : StringPrintf("%6.2f", j.partition_skew);
    out += StringPrintf(
        "%-34s %8zu %6zu %12llu %12llu %6llu %6llu %6llu %6llu %6llu %6llu "
        "%s %10.4f%s\n",
        j.job_name.c_str(), j.num_splits, j.num_reducers,
        static_cast<unsigned long long>(j.input_records),
        static_cast<unsigned long long>(j.shuffle_bytes),
        static_cast<unsigned long long>(j.task_attempts),
        static_cast<unsigned long long>(j.task_failures),
        static_cast<unsigned long long>(j.retried_tasks),
        static_cast<unsigned long long>(j.speculative_attempts),
        static_cast<unsigned long long>(j.killed_attempts),
        static_cast<unsigned long long>(j.deadline_exceeded), skew.c_str(),
        j.total_seconds, j.succeeded ? "" : "  FAILED");
  }
  out += StringPrintf("TOTAL: %zu jobs, %llu input records, %llu shuffle "
                      "bytes, %llu failed attempts, %llu retried tasks, "
                      "%llu speculative, %llu killed, %llu deadline, "
                      "%.4f s\n",
                      jobs_.size(),
                      static_cast<unsigned long long>(TotalInputRecords()),
                      static_cast<unsigned long long>(TotalShuffleBytes()),
                      static_cast<unsigned long long>(TotalTaskFailures()),
                      static_cast<unsigned long long>(TotalRetriedTasks()),
                      static_cast<unsigned long long>(
                          TotalSpeculativeAttempts()),
                      static_cast<unsigned long long>(TotalKilledAttempts()),
                      static_cast<unsigned long long>(
                          TotalDeadlineExceeded()),
                      TotalSeconds());
  const MetricBag merged = MergedCounters();
  if (!merged.empty()) {
    out += "counters:\n";
    out += merged.ToString("  ");
  }
  return out;
}

namespace {

template <typename T, typename Fn>
std::string JsonArray(const std::vector<T>& values, Fn&& render) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += render(values[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJson(const MetricBag* driver) const {
  std::string out = "{\n  \"jobs\": [";
  for (size_t i = 0; i < jobs_.size(); ++i) {
    const JobMetrics& j = jobs_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StringPrintf(
        "    {\"job_name\": \"%s\", \"num_splits\": %zu, "
        "\"num_reducers\": %zu, \"input_records\": %llu, "
        "\"map_output_records\": %llu, \"shuffle_bytes\": %llu, "
        "\"output_records\": %llu, \"task_attempts\": %llu, "
        "\"task_failures\": %llu, \"retried_tasks\": %llu, "
        "\"speculative_attempts\": %llu, \"killed_attempts\": %llu, "
        "\"deadline_exceeded\": %llu, "
        "\"succeeded\": %s, \"map_seconds\": %.6f, "
        "\"shuffle_seconds\": %.6f, \"reduce_seconds\": %.6f, "
        "\"total_seconds\": %.6f, \"partition_skew\": %.6f, "
        "\"partition_records\": %s, \"partition_shuffle_seconds\": %s, "
        "\"counters\": %s}",
        JsonEscape(j.job_name).c_str(), j.num_splits, j.num_reducers,
        static_cast<unsigned long long>(j.input_records),
        static_cast<unsigned long long>(j.map_output_records),
        static_cast<unsigned long long>(j.shuffle_bytes),
        static_cast<unsigned long long>(j.output_records),
        static_cast<unsigned long long>(j.task_attempts),
        static_cast<unsigned long long>(j.task_failures),
        static_cast<unsigned long long>(j.retried_tasks),
        static_cast<unsigned long long>(j.speculative_attempts),
        static_cast<unsigned long long>(j.killed_attempts),
        static_cast<unsigned long long>(j.deadline_exceeded),
        j.succeeded ? "true" : "false", j.map_seconds, j.shuffle_seconds,
        j.reduce_seconds, j.total_seconds, j.partition_skew,
        JsonArray(j.partition_records,
                  [](uint64_t r) {
                    return StringPrintf(
                        "%llu", static_cast<unsigned long long>(r));
                  })
            .c_str(),
        JsonArray(j.partition_shuffle_seconds,
                  [](double s) { return StringPrintf("%.6f", s); })
            .c_str(),
        j.counters.ToJson().c_str());
  }
  out += StringPrintf(
      "\n  ],\n"
      "  \"num_jobs\": %zu,\n"
      "  \"total_seconds\": %.6f,\n"
      "  \"total_shuffle_bytes\": %llu,\n"
      "  \"total_input_records\": %llu,\n"
      "  \"total_task_failures\": %llu,\n"
      "  \"total_retried_tasks\": %llu,\n"
      "  \"total_speculative_attempts\": %llu,\n"
      "  \"total_killed_attempts\": %llu,\n"
      "  \"total_deadline_exceeded\": %llu,\n"
      "  \"counters\": %s\n}\n",
      jobs_.size(), TotalSeconds(),
      static_cast<unsigned long long>(TotalShuffleBytes()),
      static_cast<unsigned long long>(TotalInputRecords()),
      static_cast<unsigned long long>(TotalTaskFailures()),
      static_cast<unsigned long long>(TotalRetriedTasks()),
      static_cast<unsigned long long>(TotalSpeculativeAttempts()),
      static_cast<unsigned long long>(TotalKilledAttempts()),
      static_cast<unsigned long long>(TotalDeadlineExceeded()),
      MergedCounters().ToJson().c_str());
  if (driver != nullptr && !driver->empty()) {
    // Splice the driver bag in before the closing "\n}\n", keeping the
    // no-driver serialization byte-identical to what it always was.
    out.erase(out.find_last_of('}') - 1);
    out += StringPrintf(",\n  \"driver\": %s\n}\n",
                        driver->ToJson().c_str());
  }
  return out;
}

}  // namespace p3c::mr
