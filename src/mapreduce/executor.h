#ifndef P3C_MAPREDUCE_EXECUTOR_H_
#define P3C_MAPREDUCE_EXECUTOR_H_

// Pluggable task-execution backends for LocalRunner (DESIGN.md §16).
//
// The runner's phase drivers (map / combine / reduce loops, attempt
// retry, speculation, watchdog) are backend-agnostic: every attempt
// copy funnels through TaskExecutor::RunCopy. The in-process backend
// runs the typed task body inline on the calling pool worker — the
// zero-overhead path the engine always had. The worker-process backend
// (worker_backend.h) ships the task to a forked worker process over
// the wire protocol (wire.h) and decodes the result back, giving task
// attempts real crash isolation: a SIGKILLed worker surfaces as a
// failed attempt and the normal retry machinery re-runs the task.
//
// Phase installation: before a phase's parallel loop starts, the
// runner installs the phase's *remote form* — a child-side compute
// function returning serialized bytes, and a driver-side decode+commit
// function — via BeginPhase (RAII: ScopedExecutorPhase). Backends that
// execute remotely fork their phase pool here; the in-process backend
// ignores it. Task kinds without an installed remote form (combine
// tasks, jobs with non-wire-serializable types) always run inline, on
// every backend.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/mapreduce/fault.h"

namespace p3c::mr {

/// Which task-execution backend a runner uses.
enum class Backend {
  kInProcess = 0,  ///< task bodies run on the driver's pool threads
  kProcess = 1,    ///< task bodies run in forked worker processes
};

inline const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kInProcess:
      return "inprocess";
    case Backend::kProcess:
      return "process";
  }
  return "unknown";
}

/// Parses the CLI spelling ("inprocess" | "process"); kInvalidArgument
/// on anything else.
inline Result<Backend> ParseBackend(const std::string& name) {
  if (name == "inprocess") return Backend::kInProcess;
  if (name == "process") return Backend::kProcess;
  return Status::InvalidArgument("unknown backend '" + name +
                                 "' (expected inprocess|process)");
}

/// Per-copy view handed to task bodies. Bodies must (a) poll `cancel`
/// in their long loops (emit / per-record / per-group) and surface it
/// via ThrowIfCancelled, and (b) publish their side effects only
/// through Commit. The CAS commit slot is shared by all copies of all
/// attempts of one task, so exactly one copy ever commits — racing
/// copies compute identical results from the same immutable input,
/// and whichever loses the CAS simply discards its (identical) work.
struct TaskContext {
  size_t attempt = 0;
  bool speculative = false;
  CancellationToken cancel{};
  std::atomic<bool>* commit_slot = nullptr;

  template <typename Fn>
  bool Commit(Fn&& fn) const {
    bool expected = false;
    if (commit_slot == nullptr ||
        commit_slot->compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      std::forward<Fn>(fn)();
      return true;
    }
    return false;
  }
};

/// In-memory body of one attempt copy (the engine's native form).
using TaskBody = std::function<Status(const TaskContext&)>;

/// Child-side compute of one task of the installed phase: runs the
/// task from the phase's immutable input and returns the serialized
/// result payload. Executes inside a worker process — it must not
/// touch driver-side mutable state, and it has no cancellation token
/// (a worker is stopped with a signal, not cooperatively).
using PhaseTaskFn = std::function<Result<std::string>(uint64_t task_index)>;

/// Driver-side decode+commit of a payload produced by PhaseTaskFn for
/// `task_index`. Publishes through ctx.Commit so remote results ride
/// the same exactly-once CAS slot as inline bodies.
using PhaseCommitFn = std::function<Status(
    const TaskContext& ctx, uint64_t task_index, std::string payload)>;

/// Backend interface. One executor belongs to one LocalRunner; RunCopy
/// is called concurrently from pool workers (and speculative-copy
/// threads), BeginPhase/EndPhase only from the job thread between
/// parallel loops.
class TaskExecutor {
 public:
  virtual ~TaskExecutor() = default;

  virtual const char* name() const = 0;

  /// Installs the remote form of the next task phase. `run`/`commit`
  /// may be null when the phase's types cannot cross the process
  /// boundary — the phase then runs inline on every backend.
  virtual void BeginPhase(const std::string& job_name, TaskKind kind,
                          size_t num_tasks, PhaseTaskFn run,
                          PhaseCommitFn commit) = 0;

  /// Tears the installed phase down (process backends stop their
  /// worker pool here). Paired with every BeginPhase.
  virtual void EndPhase() = 0;

  /// Runs one attempt copy of `attempt` and publishes its result
  /// through `ctx`. `inline_body` is always available as the native
  /// in-memory execution of this copy; backends without a usable
  /// remote path for this task must fall back to it.
  virtual Status RunCopy(const TaskAttempt& attempt, const TaskContext& ctx,
                         const TaskBody& inline_body) = 0;
};

/// The engine's native backend: every copy runs its typed body inline
/// on the calling thread. BeginPhase/EndPhase are no-ops.
class InProcessExecutor final : public TaskExecutor {
 public:
  const char* name() const override { return "inprocess"; }
  void BeginPhase(const std::string&, TaskKind, size_t, PhaseTaskFn,
                  PhaseCommitFn) override {}
  void EndPhase() override {}
  Status RunCopy(const TaskAttempt&, const TaskContext& ctx,
                 const TaskBody& inline_body) override {
    return inline_body(ctx);
  }
};

/// RAII BeginPhase/EndPhase pairing for the runner's phase drivers.
class ScopedExecutorPhase {
 public:
  ScopedExecutorPhase(TaskExecutor* executor, const std::string& job_name,
                      TaskKind kind, size_t num_tasks, PhaseTaskFn run,
                      PhaseCommitFn commit)
      : executor_(executor) {
    executor_->BeginPhase(job_name, kind, num_tasks, std::move(run),
                          std::move(commit));
  }
  ~ScopedExecutorPhase() { executor_->EndPhase(); }

  ScopedExecutorPhase(const ScopedExecutorPhase&) = delete;
  ScopedExecutorPhase& operator=(const ScopedExecutorPhase&) = delete;

 private:
  TaskExecutor* executor_;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_EXECUTOR_H_
