#ifndef P3C_MAPREDUCE_METRICS_H_
#define P3C_MAPREDUCE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/counters.h"

namespace p3c::mr {

/// Per-job execution statistics. The paper's efficiency arguments (§5.3's
/// Tc heuristic trades extra candidates against saved MR jobs; §7.5.2
/// attributes P3C+-MR's runtime to its larger job count) are quantified
/// through these numbers in `bench/bench_fig7_runtime`.
struct JobMetrics {
  std::string job_name;
  size_t num_splits = 0;
  size_t num_reducers = 0;
  uint64_t input_records = 0;
  uint64_t map_output_records = 0;   ///< records entering the shuffle
  uint64_t shuffle_bytes = 0;        ///< approximate serialized volume
  uint64_t output_records = 0;
  // Fault-tolerance accounting (Hadoop's failed/killed task attempt
  // counters): every map/combine/reduce task of the job runs as one or
  // more attempts; failed attempts leave no side effects and are
  // retried up to RunnerOptions::max_attempts.
  uint64_t task_attempts = 0;   ///< executed task attempt copies, all kinds
  uint64_t task_failures = 0;   ///< attempts that failed (throw/Status)
  uint64_t retried_tasks = 0;   ///< tasks that needed > 1 attempt
  // Straggler accounting (DESIGN.md §11). Engine kills are counted
  // separately from genuine failures, mirroring Hadoop's FAILED vs
  // KILLED attempt states; deadline_exceeded is the subset of kills
  // caused by RunnerOptions::task_deadline_seconds (the rest are
  // speculation losers). All three are 0 when straggler control is off.
  uint64_t speculative_attempts = 0;  ///< duplicate copies launched
  uint64_t killed_attempts = 0;       ///< copies cancelled by the engine
  uint64_t deadline_exceeded = 0;     ///< kills caused by the task deadline
  bool succeeded = true;        ///< false: a task exhausted its attempts
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;
  // Partitioned-shuffle accounting (empty for map-only jobs): per-reduce-
  // partition merge wall time and record count, plus the skew factor
  // max(partition_records) / mean(partition_records) — 1.0 is a perfectly
  // balanced shuffle, num_reducers is the worst case (all records on one
  // partition; Hadoop's "straggling reducer" diagnosis).
  std::vector<double> partition_shuffle_seconds;
  std::vector<uint64_t> partition_records;
  double partition_skew = 0.0;
  /// Snapshot of the job's merged user counters (counter/gauge/
  /// histogram, see src/common/counters.h). Empty for failed jobs —
  /// failed attempts and failed jobs leave no counter side effects.
  MetricBag counters;
};

/// Accumulates the job log of one clustering run.
class MetricsRegistry {
 public:
  void Record(JobMetrics metrics) { jobs_.push_back(std::move(metrics)); }

  [[nodiscard]] const std::vector<JobMetrics>& jobs() const { return jobs_; }
  [[nodiscard]] size_t num_jobs() const { return jobs_.size(); }

  /// Sum of per-job wall times.
  [[nodiscard]] double TotalSeconds() const;
  /// Projected wall time on a cluster whose scheduler costs
  /// `per_job_overhead_seconds` per MR job (Hadoop-style job latencies
  /// are tens of seconds). This is the quantity behind the paper's §5.3
  /// Tc trade-off and the §7.5.2 runtime ordering: with real job
  /// overhead, pipelines with more jobs lose even when their in-process
  /// compute time is comparable.
  double ProjectedSecondsWithOverhead(double per_job_overhead_seconds) const {
    return TotalSeconds() +
           per_job_overhead_seconds * static_cast<double>(jobs_.size());
  }
  /// Sum of shuffle volumes.
  [[nodiscard]] uint64_t TotalShuffleBytes() const;
  /// Sums of the fault-tolerance accounting across jobs: failed task
  /// attempts and tasks that needed more than one attempt. Both are 0
  /// on a fault-free run.
  [[nodiscard]] uint64_t TotalTaskFailures() const;
  [[nodiscard]] uint64_t TotalRetriedTasks() const;
  /// Sums of the straggler accounting across jobs: speculative copies
  /// launched, attempt copies killed by the engine, and the subset of
  /// kills caused by the task deadline. All 0 when straggler control
  /// (deadlines, speculation) is disabled.
  [[nodiscard]] uint64_t TotalSpeculativeAttempts() const;
  [[nodiscard]] uint64_t TotalKilledAttempts() const;
  [[nodiscard]] uint64_t TotalDeadlineExceeded() const;
  /// Sum of map input records over all jobs — the "I/O workload" proxy:
  /// each input record of each job corresponds to one record read from
  /// the storage system in a real deployment.
  [[nodiscard]] uint64_t TotalInputRecords() const;

  /// Kind-aware aggregation of every successful job's counter snapshot
  /// — equal to the RunnerOptions::counters sink of the same run.
  [[nodiscard]] MetricBag MergedCounters() const;

  /// Multi-line human-readable table of all jobs, including the
  /// fault-tolerance columns (attempts / failures / retried tasks) and
  /// the shuffle skew ("-" for map-only jobs, whose partition vectors
  /// are empty), followed by the merged counters rendered through
  /// MetricBag::ToString (histograms with count/p50/p95/max columns).
  [[nodiscard]] std::string ToString() const;

  /// Machine-readable export of the whole registry: a JSON object with
  /// a "jobs" array (every JobMetrics field including per-job counters
  /// and per-partition vectors), the aggregate totals, and the merged
  /// counters. Counter values are deterministic — byte-identical across
  /// thread counts and under injected faults; timings of course vary.
  /// When `driver` is non-null its bag is emitted under a "driver" key
  /// — the pipeline driver's own gauges (mem.* peaks, RSS samples),
  /// which belong to no single MR job.
  [[nodiscard]] std::string ToJson(const MetricBag* driver = nullptr) const;

  void Clear() { jobs_.clear(); }

 private:
  std::vector<JobMetrics> jobs_;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_METRICS_H_
