#ifndef P3C_MAPREDUCE_FAULT_H_
#define P3C_MAPREDUCE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/string_util.h"

namespace p3c::mr {

/// The three retryable task kinds of a LocalRunner job. Combine tasks
/// are listed separately from map tasks because Hadoop runs (and
/// re-runs) the combiner as part of a map *attempt*; here each gets its
/// own attempt loop so a crashing combiner cannot take the map output
/// down with it.
enum class TaskKind { kMap = 0, kCombine = 1, kReduce = 2 };

inline const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMap:
      return "map";
    case TaskKind::kCombine:
      return "combine";
    case TaskKind::kReduce:
      return "reduce";
  }
  return "unknown";
}

/// Identity of one task attempt: Hadoop's `attempt_<job>_<task>_<n>`
/// naming collapsed to the coordinates the in-process engine has.
struct TaskAttempt {
  const std::string& job_name;
  TaskKind kind;
  size_t task_index;
  size_t attempt;  ///< 0-based attempt number within the task
  /// True for the duplicate copy launched by speculative execution;
  /// the primary copy of the same attempt number has this false.
  bool speculative = false;
  /// Cancellation token of this attempt copy. Injected delays and
  /// hangs wait on it so a watchdog kill (or a speculation loser-kill)
  /// unblocks them immediately; a default token never cancels.
  CancellationToken cancel{};
};

/// Identity of one committed pipeline phase: consulted right after the
/// P3C+-MR driver has durably written the phase's checkpoint. The
/// crash-point substrate for the kill-and-resume suite — an injector
/// that fails (or exits the process) here models a driver death at the
/// exact instant the phase boundary hit disk.
struct PhaseCommit {
  const std::string& phase_name;
  size_t phase_index;
};

/// Fault-injection hook consulted by LocalRunner at the start of every
/// task attempt — the test substrate for the engine's retry machinery.
///
/// Implementations are called concurrently from worker threads and must
/// be thread-safe. Returning a non-OK Status makes the attempt fail
/// with that status (as if the user code had failed); implementations
/// may instead throw to simulate a crashing task. Either way the
/// engine discards the attempt wholesale and re-runs it, so a correctly
/// configured injector never changes job *output*, only the attempt
/// accounting in JobMetrics.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  virtual Status OnAttemptStart(const TaskAttempt& attempt) = 0;

  /// Driver-side crash point: called by the P3C+-MR pipeline after each
  /// phase checkpoint commit (never from engine worker threads, but an
  /// injector shared with the engine must still be thread-safe).
  /// Returning a non-OK Status aborts the pipeline with that status —
  /// the in-process stand-in for a SIGKILL at the phase boundary, since
  /// the checkpoint is already durable when the hook fires.
  virtual Status OnPhaseCommit(const PhaseCommit& commit) {
    (void)commit;
    return Status::OK();
  }

  /// Worker-kill crash point: consulted by the worker-process backend
  /// right after `attempt`'s TASK frame went out on the wire. A
  /// non-zero return is a signal number the backend delivers to the
  /// worker that just accepted the task — SIGKILL for a genuine
  /// mid-task crash, SIGSTOP for a frozen worker the heartbeat must
  /// catch. Returning 0 injects nothing. The in-process backend never
  /// consults this hook.
  virtual int OnWorkerKill(const TaskAttempt& attempt) {
    (void)attempt;
    return 0;
  }
};

/// Script-driven injector: fails exactly the (job, kind, task, attempt)
/// coordinates its rules name. Rules are one-shot by default, so a job
/// that is re-run at the pipeline level (attempt numbers restart at 0)
/// sails through the second time — the "transient task failure" model.
class ScriptedFaultInjector : public FaultInjector {
 public:
  static constexpr size_t kUnlimitedFires =
      std::numeric_limits<size_t>::max();

  struct Rule {
    /// Substring of the job name; empty matches every job.
    std::string job_substring;
    /// Unset fields match every kind / task / attempt.
    std::optional<TaskKind> kind;
    std::optional<size_t> task_index;
    std::optional<size_t> attempt;
    /// How many attempts this rule kills before burning out.
    size_t fires = 1;
    /// Unset matches both copies; set, it matches only the primary
    /// (false) or only the speculative (true) copy of an attempt.
    std::optional<bool> speculative;
    /// Throw instead of returning the status (simulates a crash the
    /// engine must catch rather than a clean failure).
    bool throws = false;
    /// Straggler injection: sleep this long before resolving the rule.
    /// The sleep waits on the attempt's cancellation token, so a
    /// watchdog deadline-kill or a speculation loser-kill interrupts
    /// it immediately (the delayed attempt then fails as cancelled).
    double delay_seconds = 0.0;
    /// Hang injection: block until the attempt is cancelled, then fail
    /// as cancelled — a task that never finishes on its own, the
    /// failure mode deadlines exist for. A hung attempt whose token is
    /// never cancelled (no deadline configured) blocks forever, which
    /// is exactly what the uninstrumented engine would do.
    bool hang = false;
    /// Failure returned (or wrapped in the thrown exception). Delay
    /// rules with an OK status model a pure straggler: slow but
    /// correct.
    Status status = Status::Internal("injected fault");
  };

  void AddRule(Rule rule) {
    MutexLock lock(mu_);
    rules_.push_back(std::move(rule));
  }

  /// Convenience: one-shot kill of `attempt` of `task` in jobs matching
  /// `job_substring` (any kind).
  void FailOnce(std::string job_substring, size_t task_index,
                size_t attempt) {
    Rule rule;
    rule.job_substring = std::move(job_substring);
    rule.task_index = task_index;
    rule.attempt = attempt;
    AddRule(std::move(rule));
  }

  /// Convenience: one-shot pure straggler — `attempt` of `task` runs
  /// `delay_seconds` late but succeeds (status OK).
  void DelayOnce(std::string job_substring, size_t task_index, size_t attempt,
                 double delay_seconds) {
    Rule rule;
    rule.job_substring = std::move(job_substring);
    rule.task_index = task_index;
    rule.attempt = attempt;
    rule.delay_seconds = delay_seconds;
    rule.status = Status::OK();
    AddRule(std::move(rule));
  }

  /// Convenience: one-shot permanent hang of `attempt` of `task` —
  /// blocks until the engine cancels the attempt (deadline kill or
  /// speculation loser-kill).
  void HangOnce(std::string job_substring, size_t task_index,
                size_t attempt) {
    Rule rule;
    rule.job_substring = std::move(job_substring);
    rule.task_index = task_index;
    rule.attempt = attempt;
    rule.hang = true;
    AddRule(std::move(rule));
  }

  /// Crash-point rule for OnPhaseCommit: kills the pipeline right after
  /// the named phase's checkpoint reached disk.
  struct PhaseRule {
    /// Substring of the phase name; empty matches every phase.
    std::string phase_substring;
    /// How many commits this rule kills before burning out.
    size_t fires = 1;
    /// Throw instead of returning the status.
    bool throws = false;
    Status status = Status::Internal("injected crash at phase commit");
  };

  void AddPhaseRule(PhaseRule rule) {
    MutexLock lock(mu_);
    phase_rules_.push_back(std::move(rule));
  }

  /// Convenience: one-shot driver kill right after `phase_substring`'s
  /// checkpoint commit.
  void FailAfterPhase(std::string phase_substring) {
    PhaseRule rule;
    rule.phase_substring = std::move(phase_substring);
    AddPhaseRule(std::move(rule));
  }

  Status OnPhaseCommit(const PhaseCommit& commit) override {
    PhaseRule fired;
    bool matched = false;
    {
      MutexLock lock(mu_);
      for (PhaseRule& rule : phase_rules_) {
        if (rule.fires == 0) continue;
        if (!rule.phase_substring.empty() &&
            commit.phase_name.find(rule.phase_substring) ==
                std::string::npos) {
          continue;
        }
        if (rule.fires != kUnlimitedFires) --rule.fires;
        ++injected_;
        fired = rule;
        matched = true;
        break;
      }
    }
    if (!matched) return Status::OK();
    if (fired.throws) {
      throw std::runtime_error(StringPrintf(
          "injected crash after phase '%s' (index %zu) committed",
          commit.phase_name.c_str(), commit.phase_index));
    }
    return Status(fired.status.code(),
                  StringPrintf("%s (after phase '%s', index %zu)",
                               fired.status.message().c_str(),
                               commit.phase_name.c_str(),
                               commit.phase_index));
  }

  /// Worker-kill rule for OnWorkerKill: delivers `signum` to the worker
  /// process that just accepted a matching task attempt.
  struct WorkerRule {
    /// Substring of the job name; empty matches every job.
    std::string job_substring;
    /// Unset fields match every kind / task / attempt.
    std::optional<TaskKind> kind;
    std::optional<size_t> task_index;
    std::optional<size_t> attempt;
    /// How many workers this rule kills before burning out.
    size_t fires = 1;
    /// Signal delivered to the worker (SIGKILL, SIGSTOP, ...).
    int signum = 9;
  };

  void AddWorkerRule(WorkerRule rule) {
    MutexLock lock(mu_);
    worker_rules_.push_back(std::move(rule));
  }

  /// Convenience: one-shot `signum` (default SIGKILL) to the worker
  /// running `attempt` of `task` in jobs matching `job_substring`.
  void KillWorkerOnce(std::string job_substring, size_t task_index,
                      size_t attempt, int signum = 9) {
    WorkerRule rule;
    rule.job_substring = std::move(job_substring);
    rule.task_index = task_index;
    rule.attempt = attempt;
    rule.signum = signum;
    AddWorkerRule(std::move(rule));
  }

  int OnWorkerKill(const TaskAttempt& attempt) override {
    MutexLock lock(mu_);
    for (WorkerRule& rule : worker_rules_) {
      if (rule.fires == 0) continue;
      if (!rule.job_substring.empty() &&
          attempt.job_name.find(rule.job_substring) == std::string::npos) {
        continue;
      }
      if (rule.kind.has_value() && *rule.kind != attempt.kind) continue;
      if (rule.task_index.has_value() &&
          *rule.task_index != attempt.task_index) {
        continue;
      }
      if (rule.attempt.has_value() && *rule.attempt != attempt.attempt) {
        continue;
      }
      if (rule.fires != kUnlimitedFires) --rule.fires;
      ++injected_;
      return rule.signum;
    }
    return 0;
  }

  Status OnAttemptStart(const TaskAttempt& attempt) override {
    // Match and consume the rule under the lock, but perform blocking
    // actions (delay, hang) outside it — a hanging attempt must not
    // wedge every other attempt's injector consult.
    Rule fired;
    bool matched = false;
    {
      MutexLock lock(mu_);
      for (Rule& rule : rules_) {
        if (rule.fires == 0) continue;
        if (!rule.job_substring.empty() &&
            attempt.job_name.find(rule.job_substring) == std::string::npos) {
          continue;
        }
        if (rule.kind.has_value() && *rule.kind != attempt.kind) continue;
        if (rule.task_index.has_value() &&
            *rule.task_index != attempt.task_index) {
          continue;
        }
        if (rule.attempt.has_value() && *rule.attempt != attempt.attempt) {
          continue;
        }
        if (rule.speculative.has_value() &&
            *rule.speculative != attempt.speculative) {
          continue;
        }
        if (rule.fires != kUnlimitedFires) --rule.fires;
        ++injected_;
        fired = rule;
        matched = true;
        break;
      }
    }
    if (!matched) return Status::OK();
    if (fired.hang) {
      // Block until the engine gives up on this copy. A null token
      // (cancellation disabled) blocks forever — the honest rendition
      // of a hung task on an engine without deadlines.
      attempt.cancel.WaitForCancel();
      throw CancelledError();
    }
    if (fired.delay_seconds > 0.0) {
      if (attempt.cancel.WaitFor(fired.delay_seconds)) {
        // Killed mid-delay: the attempt dies as cancelled, not with
        // the rule's status.
        throw CancelledError();
      }
    }
    if (fired.throws) {
      throw std::runtime_error(StringPrintf(
          "injected crash: job '%s' %s task %zu attempt %zu",
          attempt.job_name.c_str(), TaskKindName(attempt.kind),
          attempt.task_index, attempt.attempt));
    }
    return fired.status;
  }

  uint64_t injected_faults() const {
    MutexLock lock(mu_);
    return injected_;
  }

 private:
  /// Leaf lock: held only around rule matching and bookkeeping; every
  /// blocking action (delay, hang) happens after it is released.
  mutable Mutex mu_{"ScriptedFaultInjector::mu_"};
  std::vector<Rule> rules_ P3C_GUARDED_BY(mu_);
  std::vector<PhaseRule> phase_rules_ P3C_GUARDED_BY(mu_);
  std::vector<WorkerRule> worker_rules_ P3C_GUARDED_BY(mu_);
  uint64_t injected_ P3C_GUARDED_BY(mu_) = 0;
};

/// Seeded pseudo-random injector: attempt k of a task fails with
/// `fail_probability` when k < max_faults_per_task, decided by a
/// deterministic hash of (seed, job, kind, task, attempt). Because only
/// the first `max_faults_per_task` attempts can be killed, a runner
/// configured with max_attempts > max_faults_per_task always makes
/// progress — with fail_probability = 1.0 this kills the first attempt
/// of every task of every job, the acceptance scenario for retry
/// exactly-once semantics.
class SeededFaultInjector : public FaultInjector {
 public:
  explicit SeededFaultInjector(uint64_t seed, double fail_probability = 1.0,
                               size_t max_faults_per_task = 1)
      : seed_(seed),
        fail_probability_(fail_probability),
        max_faults_per_task_(max_faults_per_task) {}

  Status OnAttemptStart(const TaskAttempt& attempt) override {
    if (attempt.attempt >= max_faults_per_task_) return Status::OK();
    // FNV-1a over the job name, then splitmix64 finalization over the
    // task coordinates: stable across runs and platforms.
    uint64_t h = 14695981039346656037ull ^ seed_;
    for (char c : attempt.job_name) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    h ^= static_cast<uint64_t>(attempt.kind) * 0x9e3779b97f4a7c15ull;
    h = Mix(h + attempt.task_index);
    h = Mix(h + attempt.attempt);
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
    if (u >= fail_probability_) return Status::OK();
    injected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal(StringPrintf(
        "injected fault: job '%s' %s task %zu attempt %zu",
        attempt.job_name.c_str(), TaskKindName(attempt.kind),
        attempt.task_index, attempt.attempt));
  }

  uint64_t injected_faults() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  uint64_t seed_;
  double fail_probability_;
  size_t max_faults_per_task_;
  std::atomic<uint64_t> injected_{0};
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_FAULT_H_
