#ifndef P3C_MAPREDUCE_COUNTERS_H_
#define P3C_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/counters.h"
#include "src/common/sync.h"

namespace p3c::mr {

/// Named task metrics, the MapReduce framework's classic side channel
/// for job statistics ("records skipped", "candidates merged"). Backed
/// by p3c::MetricBag, so tasks can report three Hadoop-style kinds:
/// monotone counters (Increment), level gauges (SetGauge; merged by
/// max, the order-free combination), and power-of-two histograms
/// (Observe) — see src/common/counters.h for the merge semantics that
/// keep all three deterministic across thread counts.
///
/// Every member takes `mu_`, so a Counters instance is safe to share:
/// task-local instances see only uncontended acquisitions (one owner),
/// and the cross-job sink can be read (Snapshot/ToJson) while a late
/// straggler merge is still landing. The per-op cost for task-local
/// accumulation is one uncontended lock, dwarfed by the string-keyed
/// map lookup it guards.
///
/// Exactly-once semantics under retry: a task attempt accumulates into
/// an attempt-local instance that is dropped with the attempt on
/// failure, and a job's merged counters reach the cross-job sink
/// (RunnerOptions::counters) only when the whole job succeeds — so
/// neither task retries nor pipeline-level job re-runs double-count.
class Counters {
 public:
  Counters() = default;

  // Movable for collecting task-local instances; not copyable to avoid
  // accidentally duplicating counts. Moving requires external
  // exclusivity on *both* sides (nobody may use an object while it is
  // moved from) — locking both would mean acquiring two locks of the
  // same lock class, which the debug lock-order checker forbids.
  Counters(Counters&& other) noexcept P3C_NO_THREAD_SAFETY_ANALYSIS
      : bag_(std::move(other.bag_)) {}
  Counters& operator=(Counters&& other) noexcept
      P3C_NO_THREAD_SAFETY_ANALYSIS {
    bag_ = std::move(other.bag_);
    return *this;
  }

  /// Adds `delta` to the named counter.
  void Increment(const std::string& name, uint64_t delta = 1) {
    MutexLock lock(mu_);
    bag_.Increment(name, delta);
  }

  /// Sets the named gauge (task-local last-write-wins; cross-task merge
  /// takes the maximum).
  void SetGauge(const std::string& name, double value) {
    MutexLock lock(mu_);
    bag_.SetGauge(name, value);
  }

  /// Records one observation into the named histogram.
  void Observe(const std::string& name, double value) {
    MutexLock lock(mu_);
    bag_.Observe(name, value);
  }

  /// Current counter value; 0 for unknown names.
  uint64_t Get(const std::string& name) const {
    MutexLock lock(mu_);
    return bag_.Get(name);
  }
  /// Current gauge level; 0.0 for unknown names.
  double GetGauge(const std::string& name) const {
    MutexLock lock(mu_);
    return bag_.GetGauge(name);
  }
  /// Full metric (any kind), or nullptr when unknown. The pointer stays
  /// valid across later inserts (std::map nodes are stable) but not
  /// across Clear(); callers that race merges should copy under
  /// Snapshot() instead.
  const Metric* Find(const std::string& name) const {
    MutexLock lock(mu_);
    return bag_.Find(name);
  }

  /// Thread-safe accumulation of a task-local instance into this one.
  /// Reads `other` without its lock: the merging thread owns the
  /// task-local instance exclusively by the time it merges (the
  /// attempt has finished).
  void Merge(const Counters& other) P3C_NO_THREAD_SAFETY_ANALYSIS {
    MutexLock lock(mu_);
    bag_.MergeFrom(other.bag_);
  }

  /// Thread-safe accumulation of a raw MetricBag. Checkpoint resume
  /// uses this to replay the counter snapshot persisted with the last
  /// completed phase, so a resumed pipeline reports the same merged
  /// counters as an uninterrupted one.
  void MergeBag(const MetricBag& bag) {
    MutexLock lock(mu_);
    bag_.MergeFrom(bag);
  }

  /// Copy of the name → Metric map, taken under the lock. A copy (not
  /// a reference) so callers can never observe a half-landed merge.
  std::map<std::string, Metric> values() const {
    MutexLock lock(mu_);
    return bag_.values();
  }

  /// Copyable snapshot of the merged metrics (JobMetrics embeds one).
  /// Safe against a concurrently landing Merge — this is the export
  /// path the run report and checkpoint writer use.
  MetricBag Snapshot() const {
    MutexLock lock(mu_);
    return bag_;
  }

  /// JSON object of every metric (see MetricBag::ToJson), rendered from
  /// a consistent snapshot.
  std::string ToJson() const {
    MutexLock lock(mu_);
    return bag_.ToJson();
  }

  void Clear() {
    MutexLock lock(mu_);
    bag_.Clear();
  }

 private:
  MetricBag bag_ P3C_GUARDED_BY(mu_);
  mutable Mutex mu_{"mr::Counters::mu_"};
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_COUNTERS_H_
