#ifndef P3C_MAPREDUCE_COUNTERS_H_
#define P3C_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/common/counters.h"

namespace p3c::mr {

/// Named task metrics, the MapReduce framework's classic side channel
/// for job statistics ("records skipped", "candidates merged"). Backed
/// by p3c::MetricBag, so tasks can report three Hadoop-style kinds:
/// monotone counters (Increment), level gauges (SetGauge; merged by
/// max, the order-free combination), and power-of-two histograms
/// (Observe) — see src/common/counters.h for the merge semantics that
/// keep all three deterministic across thread counts.
///
/// Mapper/reducer tasks accumulate into task-local Counters instances
/// and the runner merges them after each phase, so no locking happens
/// on the hot path; `Merge` takes the lock once per task.
///
/// Exactly-once semantics under retry: a task attempt accumulates into
/// an attempt-local instance that is dropped with the attempt on
/// failure, and a job's merged counters reach the cross-job sink
/// (RunnerOptions::counters) only when the whole job succeeds — so
/// neither task retries nor pipeline-level job re-runs double-count.
class Counters {
 public:
  Counters() = default;

  // Movable for collecting task-local instances; not copyable to avoid
  // accidentally duplicating counts.
  Counters(Counters&& other) noexcept : bag_(std::move(other.bag_)) {}
  Counters& operator=(Counters&& other) noexcept {
    bag_ = std::move(other.bag_);
    return *this;
  }

  /// Adds `delta` to the named counter (task-local use; not thread-safe).
  void Increment(const std::string& name, uint64_t delta = 1) {
    bag_.Increment(name, delta);
  }

  /// Sets the named gauge (task-local last-write-wins; cross-task merge
  /// takes the maximum).
  void SetGauge(const std::string& name, double value) {
    bag_.SetGauge(name, value);
  }

  /// Records one observation into the named histogram.
  void Observe(const std::string& name, double value) {
    bag_.Observe(name, value);
  }

  /// Current counter value; 0 for unknown names.
  uint64_t Get(const std::string& name) const { return bag_.Get(name); }
  /// Current gauge level; 0.0 for unknown names.
  double GetGauge(const std::string& name) const {
    return bag_.GetGauge(name);
  }
  /// Full metric (any kind), or nullptr when unknown.
  const Metric* Find(const std::string& name) const {
    return bag_.Find(name);
  }

  /// Thread-safe accumulation of a task-local instance into this one.
  void Merge(const Counters& other) {
    std::lock_guard<std::mutex> lock(mu_);
    bag_.MergeFrom(other.bag_);
  }

  /// Thread-safe accumulation of a raw MetricBag. Checkpoint resume
  /// uses this to replay the counter snapshot persisted with the last
  /// completed phase, so a resumed pipeline reports the same merged
  /// counters as an uninterrupted one.
  void MergeBag(const MetricBag& bag) {
    std::lock_guard<std::mutex> lock(mu_);
    bag_.MergeFrom(bag);
  }

  const std::map<std::string, Metric>& values() const {
    return bag_.values();
  }

  /// Copyable snapshot of the merged metrics (JobMetrics embeds one).
  MetricBag Snapshot() const { return bag_; }

  /// JSON object of every metric (see MetricBag::ToJson).
  std::string ToJson() const { return bag_.ToJson(); }

  void Clear() { bag_.Clear(); }

 private:
  MetricBag bag_;
  std::mutex mu_;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_COUNTERS_H_
