#ifndef P3C_MAPREDUCE_COUNTERS_H_
#define P3C_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace p3c::mr {

/// Named monotone counters, the MapReduce framework's classic side
/// channel for job statistics ("records skipped", "candidates merged").
///
/// Mapper/reducer tasks accumulate into task-local Counters instances and
/// the runner merges them after each phase, so no locking happens on the
/// hot path; `Merge` takes the lock once per task.
///
/// Exactly-once semantics under retry: a task attempt accumulates into
/// an attempt-local instance that is dropped with the attempt on
/// failure, and a job's merged counters reach the cross-job sink
/// (RunnerOptions::counters) only when the whole job succeeds — so
/// neither task retries nor pipeline-level job re-runs double-count.
class Counters {
 public:
  Counters() = default;

  // Movable for collecting task-local instances; not copyable to avoid
  // accidentally duplicating counts.
  Counters(Counters&& other) noexcept : values_(std::move(other.values_)) {}
  Counters& operator=(Counters&& other) noexcept {
    values_ = std::move(other.values_);
    return *this;
  }

  /// Adds `delta` to the named counter (task-local use; not thread-safe).
  void Increment(const std::string& name, uint64_t delta = 1) {
    values_[name] += delta;
  }

  /// Current value; 0 for unknown names.
  uint64_t Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  /// Thread-safe accumulation of a task-local instance into this one.
  void Merge(const Counters& other) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : other.values_) values_[name] += value;
  }

  const std::map<std::string, uint64_t>& values() const { return values_; }

  void Clear() { values_.clear(); }

 private:
  std::map<std::string, uint64_t> values_;
  std::mutex mu_;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_COUNTERS_H_
