#ifndef P3C_MAPREDUCE_CACHE_H_
#define P3C_MAPREDUCE_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <typeinfo>

namespace p3c::mr {

/// Analog of Hadoop's distributed cache: read-only artifacts the driver
/// publishes before a job and every mapper can read during the job.
///
/// The paper ships the candidate signature set and the RSSC bit masks to
/// mappers this way (§5.3). In this in-process engine the cache is a
/// typed, shared, immutable store; "shipping" is a shared_ptr copy, but
/// the programming discipline is the same — mappers never mutate cached
/// entries, and an entry must be published before the job that reads it.
class DistributedCache {
 public:
  /// Publishes `value` under `name`, replacing any previous entry.
  template <typename T>
  void Put(const std::string& name, std::shared_ptr<const T> value) {
    entries_[name] = Entry{std::move(value), &typeid(T)};
  }

  /// Convenience overload that takes ownership of a value.
  template <typename T>
  void Put(const std::string& name, T value) {
    Put<T>(name, std::make_shared<const T>(std::move(value)));
  }

  /// Fetches the entry published under `name`. Returns nullptr when the
  /// name is unknown or was published with a different type.
  template <typename T>
  std::shared_ptr<const T> Get(const std::string& name) const {
    auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    if (*it->second.type != typeid(T)) return nullptr;
    return std::static_pointer_cast<const T>(it->second.value);
  }

  bool Contains(const std::string& name) const {
    return entries_.count(name) > 0;
  }

  void Remove(const std::string& name) { entries_.erase(name); }
  void Clear() { entries_.clear(); }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    const std::type_info* type;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_CACHE_H_
