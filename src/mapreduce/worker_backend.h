#ifndef P3C_MAPREDUCE_WORKER_BACKEND_H_
#define P3C_MAPREDUCE_WORKER_BACKEND_H_

// Worker-process backend for LocalRunner (DESIGN.md §16): task
// attempts execute in forked worker processes, so a task that dies
// does so in a *process* — SIGKILL and all — and the engine's
// attempt-retry machinery recovers exactly as Hadoop's does when a
// task tracker vanishes.
//
// Architecture (phase-scoped worker pools):
//   - At each task phase's start the driver forks a pool of workers.
//     A forked child inherits the phase's job closures and immutable
//     input (the split span, the merged shuffle partitions) by
//     copy-on-write — the C++ analog of shipping the job JAR — so
//     nothing but task *results* ever crosses the process boundary.
//   - Driver ↔ worker speak the checksummed frame protocol of wire.h
//     over two pipes. The worker runs one task at a time: TASK in,
//     RESULT (payload + counters + peak RSS) out, PING heartbeats in
//     between from a dedicated writer thread.
//   - Crash detection is real: pipe EOF + waitpid. A dead, hung
//     (heartbeat-silent), or frozen (SIGSTOP) worker is SIGKILLed and
//     respawned with capped exponential backoff; the in-flight
//     attempt fails with a descriptive Status and the normal
//     max_attempts loop re-runs it on a healthy worker.
//   - When fork itself fails the pool degrades to inline execution on
//     the driver's pool threads with one logged notice — the job
//     still completes, byte-identical, just without crash isolation.
//
// Determinism: workers compute exactly the task bodies the in-process
// backend runs, results are committed through the same exactly-once
// CAS slots, and worker observability lands in a driver-side
// MetricBag (never in job counters) — so output and counter JSON are
// byte-identical across backends, thread counts, reducer counts, and
// injected worker kills.

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/counters.h"
#include "src/common/status.h"
#include "src/mapreduce/executor.h"
#include "src/mapreduce/fault.h"

namespace p3c::mr {

/// Knobs of the worker-process backend (RunnerOptions carries them).
struct WorkerBackendOptions {
  /// Worker processes per phase pool (>= 1; the pool also never forks
  /// more workers than the phase has tasks).
  size_t num_workers = 1;
  /// A worker silent for this long (no PING, no RESULT, no HELLO) is
  /// declared hung, SIGKILLed, and respawned. Workers ping at a quarter
  /// of the interval, so a healthy worker misses ~4 pings before dying.
  double heartbeat_seconds = 10.0;
  /// Worker-kill crash points (FaultInjector::OnWorkerKill).
  FaultInjector* fault_injector = nullptr;
};

/// TaskExecutor running the installed phase's tasks in forked worker
/// processes. Thread-safe for concurrent RunCopy calls (pool workers
/// and speculative-copy threads lease workers under a mutex);
/// BeginPhase/EndPhase run on the job thread between parallel loops.
class WorkerPoolExecutor final : public TaskExecutor {
 public:
  explicit WorkerPoolExecutor(WorkerBackendOptions options);
  ~WorkerPoolExecutor() override;

  const char* name() const override { return "process"; }
  void BeginPhase(const std::string& job_name, TaskKind kind,
                  size_t num_tasks, PhaseTaskFn run,
                  PhaseCommitFn commit) override;
  void EndPhase() override;
  Status RunCopy(const TaskAttempt& attempt, const TaskContext& ctx,
                 const TaskBody& inline_body) override;

  /// Driver-side worker observability: `worker.spawn_total`,
  /// `worker.respawn_total`, `worker.kill_total`,
  /// `worker.spawn_failures`, and the `worker.peak_rss_bytes` gauge.
  /// Deliberately a separate bag from job counters, so backend
  /// bookkeeping never perturbs the deterministic counter JSON
  /// (same split as checkpoint resume bookkeeping, §13).
  MetricBag SnapshotMetrics() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Sends `signum` to every live worker process of this driver (the
/// CLI's SIGINT/SIGTERM forwarding path — Ctrl-C must never leave
/// orphaned workers). Returns how many workers were signalled. Safe to
/// call from any thread, but NOT from a signal handler (takes a lock);
/// the CLI calls it from its shutdown watcher thread.
size_t SignalLiveWorkers(int signum);

/// Non-blocking best-effort reap of exited worker children (waitpid
/// WNOHANG per registered pid). Returns how many were reaped. Pool
/// teardown already reaps its own workers; this is the CLI's final
/// sweep before exiting on a forwarded signal.
size_t ReapWorkers();

/// Number of currently registered live worker processes (tests).
size_t LiveWorkerCount();

/// Test hook: when set, worker spawns fail as if fork() failed, so the
/// graceful-degradation path is testable without exhausting real
/// process limits.
void SetWorkerSpawnFailureForTesting(bool fail);

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_WORKER_BACKEND_H_
