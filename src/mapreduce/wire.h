#ifndef P3C_MAPREDUCE_WIRE_H_
#define P3C_MAPREDUCE_WIRE_H_

// Length-prefixed, checksummed task protocol for the multi-process
// worker backend (DESIGN.md §16). Every message between the driver and
// a worker process is one frame:
//
//   magic "P3CW" | version u32 | type u32 | payload_size u64 |
//   fnv1a64(payload) u64 | payload bytes
//
// — the pipe-stream sibling of the v2 binary container and the P3CK
// blob container (src/data/io.*): same fixed header + FNV-1a checksum
// discipline, so a torn write, a short read, or a worker that died
// mid-frame is detected as corruption instead of being half-parsed.
//
// Payloads are encoded with WireWriter/WireReader: a tiny
// little-endian codec with typed Put/Get templates covering exactly
// the key/value/output types the paper's jobs use — trivially
// copyable scalars and PODs, std::string, std::vector<T>, and
// std::pair<A, B> — plus Metric/MetricBag for shipping task counters
// back. `IsWireSerializable<T>` reports at compile time whether a
// job's types can cross the process boundary at all; jobs whose types
// cannot (none in-tree today) simply keep running in-process.

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/counters.h"
#include "src/common/status.h"

namespace p3c::mr::wire {

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

inline constexpr char kMagic[4] = {'P', '3', 'C', 'W'};
inline constexpr uint32_t kVersion = 1;
/// Frame header size on the wire: magic + version + type + size + checksum.
inline constexpr size_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;
/// Upper bound a reader accepts for one frame payload (defense against
/// parsing garbage as a colossal length and allocating it).
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 34;  // 16 GiB

enum class FrameType : uint32_t {
  kHello = 1,     ///< worker → driver: pid + protocol version handshake
  kTask = 2,      ///< driver → worker: run task (kind, index, attempt)
  kResult = 3,    ///< worker → driver: status + payload + counters + RSS
  kPing = 4,      ///< worker → driver: heartbeat (empty payload)
  kShutdown = 5,  ///< driver → worker: exit cleanly (empty payload)
};

const char* FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Serializes one frame (header + checksum + payload) into a byte
/// string ready for a single write.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Writes one frame to `fd`, retrying short writes and EINTR. Not
/// thread-safe per fd; callers serialize (the worker's result/ping
/// writers share a mutex).
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Incremental frame parser over a byte stream: feed bytes as they
/// arrive, pull complete frames out. Detects bad magic, version skew,
/// oversized lengths, and checksum mismatches as kIOError — a
/// protocol error is never silently resynchronized.
class FrameReader {
 public:
  void Append(const char* data, size_t n) { buffer_.append(data, n); }

  /// Next complete frame, std::nullopt when more bytes are needed, or
  /// kIOError on a malformed stream.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed (diagnostics).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

// ---------------------------------------------------------------------------
// Typed payload codec
// ---------------------------------------------------------------------------

/// Compile-time "can T cross the process boundary" predicate.
template <typename T, typename = void>
struct IsWireSerializable : std::is_trivially_copyable<T> {};

template <>
struct IsWireSerializable<std::string> : std::true_type {};

template <typename T>
struct IsWireSerializable<std::vector<T>> : IsWireSerializable<T> {};

template <typename A, typename B>
struct IsWireSerializable<std::pair<A, B>>
    : std::conjunction<IsWireSerializable<A>, IsWireSerializable<B>> {};

template <typename T>
inline constexpr bool kIsWireSerializable = IsWireSerializable<T>::value;

/// Appends typed values to a byte string. Fixed-width little-endian
/// integers for lengths; trivially copyable values are memcpy'd (the
/// driver and its forked workers share one ABI by construction).
class WireWriter {
 public:
  void PutRaw(const void* data, size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(std::string_view s) {
    PutU64(s.size());
    PutRaw(s.data(), s.size());
  }

  template <typename T>
  void Put(const T& value) {
    static_assert(kIsWireSerializable<T>,
                  "type cannot be shipped across the worker boundary");
    if constexpr (std::is_same_v<T, std::string>) {
      PutString(value);
    } else {
      PutRaw(&value, sizeof(T));
    }
  }

  template <typename A, typename B>
  void Put(const std::pair<A, B>& value) {
    Put(value.first);
    Put(value.second);
  }

  template <typename T>
  void Put(const std::vector<T>& value) {
    PutU64(value.size());
    if constexpr (std::is_trivially_copyable_v<T> &&
                  !std::is_same_v<T, std::string>) {
      PutRaw(value.data(), value.size() * sizeof(T));
    } else {
      for (const T& v : value) Put(v);
    }
  }

  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Decodes what WireWriter wrote. Sticky-status style like the
/// checkpoint BlobReader: over-runs set a kIOError status once and
/// every later Get returns zero values; callers check status()/Finish()
/// after decoding instead of after every field.
class WireReader {
 public:
  explicit WireReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  void GetRaw(void* out, size_t n) {
    if (!status_.ok()) {
      std::memset(out, 0, n);
      return;
    }
    if (pos_ + n > data_.size()) {
      status_ = Status::IOError(context_ + ": payload truncated");
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  double GetDouble() {
    double v = 0.0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  std::string GetString() {
    const uint64_t n = GetU64();
    if (!status_.ok()) return {};
    if (pos_ + n > data_.size()) {
      status_ = Status::IOError(context_ + ": string length over-runs");
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  template <typename T>
  void Get(T* out) {
    static_assert(kIsWireSerializable<T>,
                  "type cannot be shipped across the worker boundary");
    if constexpr (std::is_same_v<T, std::string>) {
      *out = GetString();
    } else {
      GetRaw(out, sizeof(T));
    }
  }

  template <typename A, typename B>
  void Get(std::pair<A, B>* out) {
    Get(&out->first);
    Get(&out->second);
  }

  template <typename T>
  void Get(std::vector<T>* out) {
    const uint64_t n = GetU64();
    if (!status_.ok()) return;
    // Sanity bound before reserving: every element encodes to at least
    // one byte, so a length beyond the remaining payload is corruption,
    // not a huge allocation waiting to happen.
    if (n > data_.size() - pos_) {
      status_ = Status::IOError(context_ + ": vector length over-runs");
      return;
    }
    out->clear();
    if constexpr (std::is_trivially_copyable_v<T> &&
                  !std::is_same_v<T, std::string>) {
      if (pos_ + n * sizeof(T) > data_.size()) {
        status_ = Status::IOError(context_ + ": vector bytes over-run");
        return;
      }
      out->resize(n);
      std::memcpy(out->data(), data_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    } else {
      out->reserve(n);
      for (uint64_t i = 0; i < n && status_.ok(); ++i) {
        T v;
        Get(&v);
        out->push_back(std::move(v));
      }
    }
  }

  const Status& status() const { return status_; }

  /// OK only when every payload byte was decoded — trailing garbage is
  /// corruption, same contract as the checkpoint BlobReader.
  Status Finish() const {
    if (!status_.ok()) return status_;
    if (pos_ != data_.size()) {
      return Status::IOError(context_ + ": undecoded trailing bytes");
    }
    return Status::OK();
  }

 private:
  std::string_view data_;
  std::string context_;
  size_t pos_ = 0;
  Status status_;
};

// ---------------------------------------------------------------------------
// Metric / task-frame codecs
// ---------------------------------------------------------------------------

/// Serializes a MetricBag (task counters crossing back to the driver).
void EncodeMetricBag(const MetricBag& bag, WireWriter& writer);
/// Decodes a bag; kIOError on any malformation.
Result<MetricBag> DecodeMetricBag(WireReader& reader);

/// TASK frame payload: which task of the installed phase to run.
struct TaskFrame {
  uint32_t kind = 0;  ///< TaskKind as uint32
  uint64_t task_index = 0;
  uint64_t attempt = 0;
};
std::string EncodeTaskFrame(const TaskFrame& task);
Result<TaskFrame> DecodeTaskFrame(std::string_view payload);

/// RESULT frame payload: the task's outcome. `payload` is the
/// phase-specific serialized task output (empty on failure); `counters`
/// carries the attempt-local MetricBag; `peak_rss_bytes` is the
/// worker's /proc RSS sample (0 where /proc is unavailable).
struct ResultFrame {
  uint32_t status_code = 0;  ///< StatusCode as uint32
  std::string message;
  int64_t peak_rss_bytes = 0;
  MetricBag counters;
  std::string payload;
};
std::string EncodeResultFrame(const ResultFrame& result);
Result<ResultFrame> DecodeResultFrame(std::string_view payload);

/// HELLO frame payload: worker pid + protocol version.
struct HelloFrame {
  uint64_t pid = 0;
  uint32_t version = kVersion;
};
std::string EncodeHelloFrame(const HelloFrame& hello);
Result<HelloFrame> DecodeHelloFrame(std::string_view payload);

}  // namespace p3c::mr::wire

#endif  // P3C_MAPREDUCE_WIRE_H_
