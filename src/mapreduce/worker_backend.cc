#include "src/mapreduce/worker_backend.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/resource.h"
#include "src/common/string_util.h"
#include "src/common/sync.h"
#include "src/common/trace.h"
#include "src/mapreduce/wire.h"

namespace p3c::mr {
namespace {

// ---------------------------------------------------------------------------
// Process-global live-worker registry (CLI signal forwarding / reaping)
// ---------------------------------------------------------------------------

// Leaked so late reapers (CLI atexit paths) stay safe. The registry
// set below is only ever touched under this lock; it is a function-
// local static, which the capability annotations cannot name, so the
// discipline is by convention here.
Mutex& RegistryMutex() {
  static Mutex* mu = new Mutex("worker::RegistryMutex");
  return *mu;
}

std::unordered_set<pid_t>& Registry() {
  static std::unordered_set<pid_t>* pids = new std::unordered_set<pid_t>;
  return *pids;
}

void RegisterWorker(pid_t pid) {
  MutexLock lock(RegistryMutex());
  Registry().insert(pid);
}

void UnregisterWorker(pid_t pid) {
  MutexLock lock(RegistryMutex());
  Registry().erase(pid);
}

std::atomic<bool> g_force_spawn_failure{false};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Human-readable cause of a reaped child's death.
std::string DescribeExit(int wait_status) {
  if (WIFSIGNALED(wait_status)) {
    return StringPrintf("killed by signal %d", WTERMSIG(wait_status));
  }
  if (WIFEXITED(wait_status)) {
    return StringPrintf("exited with status %d", WEXITSTATUS(wait_status));
  }
  return "ended in an unknown state";
}

// ---------------------------------------------------------------------------
// Worker child
// ---------------------------------------------------------------------------

/// Main loop of a forked worker. The child is a fork of a
/// multithreaded driver, so only the forking thread survived into it;
/// it deliberately touches nothing that could depend on another
/// thread's state — no logging, no tracing, no stdio — and leaves via
/// _exit (which also skips LSan teardown under ASan). Reads TASK
/// frames from `rfd`, runs the installed phase function, writes RESULT
/// frames (and heartbeat PINGs from a dedicated thread) to `wfd`.
[[noreturn]] void WorkerChildMain(int rfd, int wfd, const PhaseTaskFn& run,
                                  double ping_seconds) {
  ::signal(SIGPIPE, SIG_IGN);
  // Deliberately unnamed: the forked child inherits the forking
  // thread's held-lock stack (SpawnLocked forks under the pool mutex),
  // and an unnamed mutex stays out of the inherited order graph.
  Mutex write_mu;
  {
    wire::HelloFrame hello;
    hello.pid = static_cast<uint64_t>(::getpid());
    const Status st = wire::WriteFrame(wfd, wire::FrameType::kHello,
                                       wire::EncodeHelloFrame(hello));
    if (!st.ok()) ::_exit(3);
  }
  std::atomic<bool> done{false};
  std::thread ping_thread([&] {
    // Sleep in small steps so SHUTDOWN never waits a full ping
    // interval for this thread to notice `done`.
    const auto step = std::chrono::milliseconds(5);
    double slept = 0.0;
    while (!done.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(step);
      slept += 0.005;
      if (slept + 1e-9 < ping_seconds) continue;
      slept = 0.0;
      MutexLock lock(write_mu);
      if (!wire::WriteFrame(wfd, wire::FrameType::kPing, "").ok()) return;
    }
  });

  wire::FrameReader reader;
  char buf[4096];
  int exit_code = 0;
  bool running = true;
  while (running) {
    auto next = reader.Next();
    if (!next.ok()) {
      exit_code = 3;  // protocol error: driver and worker disagree
      break;
    }
    if (next->has_value()) {
      wire::Frame frame = std::move(**next);
      if (frame.type == wire::FrameType::kShutdown) break;
      if (frame.type != wire::FrameType::kTask) continue;
      wire::ResultFrame result;
      auto task = wire::DecodeTaskFrame(frame.payload);
      if (!task.ok()) {
        result.status_code =
            static_cast<uint32_t>(task.status().code());
        result.message = task.status().message();
      } else {
        try {
          auto payload = run(task->task_index);
          if (payload.ok()) {
            result.payload = std::move(*payload);
          } else {
            result.status_code =
                static_cast<uint32_t>(payload.status().code());
            result.message = payload.status().message();
          }
        } catch (const std::exception& e) {
          result.status_code = static_cast<uint32_t>(StatusCode::kInternal);
          result.message =
              StringPrintf("uncaught exception in worker: %s", e.what());
        } catch (...) {
          result.status_code = static_cast<uint32_t>(StatusCode::kInternal);
          result.message = "uncaught non-standard exception in worker";
        }
      }
      if (const auto rss = resource::MemoryTracker::SampleRss()) {
        result.peak_rss_bytes = rss->vm_rss_bytes;
      }
      MutexLock lock(write_mu);
      if (!wire::WriteFrame(wfd, wire::FrameType::kResult,
                            wire::EncodeResultFrame(result))
               .ok()) {
        exit_code = 2;  // driver went away mid-result
        running = false;
      }
      continue;  // drain buffered frames before blocking in read
    }
    const ssize_t n = ::read(rfd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // driver closed its end: orphan-proof exit
    reader.Append(buf, static_cast<size_t>(n));
  }
  done.store(true, std::memory_order_relaxed);
  ping_thread.join();
  ::_exit(exit_code);
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver side
// ---------------------------------------------------------------------------

struct WorkerPoolExecutor::Impl {
  struct Slot {
    size_t index = 0;
    pid_t pid = -1;
    int to_child = -1;    ///< driver writes TASK/SHUTDOWN here
    int from_child = -1;  ///< driver reads HELLO/PING/RESULT here
    bool live = false;
    bool leased = false;
    uint64_t deaths = 0;  ///< crashes/kills in this phase (respawn count)
    uint64_t consecutive_respawns = 0;  ///< backoff driver; reset on RESULT
    wire::FrameReader reader;           ///< persists across tasks (PINGs)
  };

  explicit Impl(WorkerBackendOptions opts) : options(std::move(opts)) {}

  WorkerBackendOptions options;

  /// Guards the slot inventory and phase state. A *leased* slot's
  /// fields are exclusively the leaseholder's and are touched without
  /// `mu` (the lease flag itself only flips under `mu`).
  ///
  /// Lock order: mu → metrics_mu (Count under SpawnLocked), and
  /// mu → worker::RegistryMutex (Register/UnregisterWorker); never the
  /// reverse.
  Mutex mu{"WorkerPoolExecutor::Impl::mu"};
  CondVar free_cv;
  std::vector<Slot> slots P3C_GUARDED_BY(mu);
  bool phase_active P3C_GUARDED_BY(mu) = false;
  bool phase_remote P3C_GUARDED_BY(mu) = false;
  TaskKind phase_kind P3C_GUARDED_BY(mu) = TaskKind::kMap;
  std::string phase_job P3C_GUARDED_BY(mu);
  PhaseTaskFn run P3C_GUARDED_BY(mu);
  PhaseCommitFn commit P3C_GUARDED_BY(mu);
  /// Spawn failed: the rest of this phase executes inline.
  bool degraded P3C_GUARDED_BY(mu) = false;
  bool degraded_logged P3C_GUARDED_BY(mu) = false;

  /// Leaf lock below `mu` in the order graph.
  mutable Mutex metrics_mu{"WorkerPoolExecutor::Impl::metrics_mu"};
  MetricBag metrics P3C_GUARDED_BY(metrics_mu);

  // -- metrics helpers ------------------------------------------------------

  void Count(const char* name, uint64_t delta = 1) {
    MutexLock lock(metrics_mu);
    metrics.Increment(name, delta);
  }

  void GaugeMax(const char* name, double value) {
    MutexLock lock(metrics_mu);
    if (value > metrics.GetGauge(name)) metrics.SetGauge(name, value);
  }

  // -- tracing helpers ------------------------------------------------------

  static uint32_t SlotLane(const Slot& slot) {
    return Tracer::kWorkerLaneBase + static_cast<uint32_t>(slot.index);
  }

  static void TraceWorker(const Slot& slot, const char* what) {
    Tracer& tracer = Tracer::Global();
    if (!tracer.enabled()) return;
    tracer.NameLane(SlotLane(slot),
                    StringPrintf("worker slot %zu", slot.index));
    tracer.RecordInstant(
        what, StringPrintf("{\"pid\": %d}", static_cast<int>(slot.pid)),
        SlotLane(slot));
  }

  // -- lifecycle ------------------------------------------------------------

  /// Forks one worker for the installed phase. Called with `mu` held
  /// (the slot fd inventory must be stable while the child closes the
  /// other slots' pipes).
  Status SpawnLocked(Slot& slot) P3C_REQUIRES(mu) {
    if (g_force_spawn_failure.load(std::memory_order_relaxed)) {
      return Status::Internal("worker spawn failed (forced by test hook)");
    }
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe(to_child) != 0) {
      return Status::IOError(
          StringPrintf("pipe: %s", std::strerror(errno)));
    }
    if (::pipe(from_child) != 0) {
      const int saved = errno;
      ::close(to_child[0]);
      ::close(to_child[1]);
      return Status::IOError(
          StringPrintf("pipe: %s", std::strerror(saved)));
    }
    // Pipes of the other slots, closed in the child: a crashed worker's
    // EOF must not be masked by a sibling still holding its write end.
    std::vector<int> sibling_fds;
    for (const Slot& other : slots) {
      if (other.to_child >= 0) sibling_fds.push_back(other.to_child);
      if (other.from_child >= 0) sibling_fds.push_back(other.from_child);
    }
    const double ping_seconds =
        std::max(0.01, options.heartbeat_seconds / 4.0);
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int saved = errno;
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      return Status::Internal(
          StringPrintf("fork: %s", std::strerror(saved)));
    }
    if (pid == 0) {
      // Child: keep only this worker's two pipe ends.
      ::close(to_child[1]);
      ::close(from_child[0]);
      for (int fd : sibling_fds) ::close(fd);
      WorkerChildMain(to_child[0], from_child[1], run, ping_seconds);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    slot.pid = pid;
    slot.to_child = to_child[1];
    slot.from_child = from_child[0];
    slot.live = true;
    slot.reader = wire::FrameReader();
    RegisterWorker(pid);
    Count("worker.spawn_total");
    TraceWorker(slot, "worker spawn");
    return Status::OK();
  }

  /// Declares a leased worker dead: closes its pipes, reaps the child,
  /// and records why. `signum` != 0 first delivers that signal (the
  /// engine's SIGKILL paths). Caller must hold the lease, not `mu`.
  std::string ReapSlot(Slot& slot, int signum) {
    if (signum != 0 && slot.pid > 0) {
      ::kill(slot.pid, signum);
      Count("worker.kill_total");
    }
    int wait_status = 0;
    std::string cause = "already gone";
    if (slot.pid > 0) {
      pid_t reaped;
      do {
        reaped = ::waitpid(slot.pid, &wait_status, 0);
      } while (reaped < 0 && errno == EINTR);
      if (reaped == slot.pid) cause = DescribeExit(wait_status);
      UnregisterWorker(slot.pid);
    }
    if (slot.to_child >= 0) ::close(slot.to_child);
    if (slot.from_child >= 0) ::close(slot.from_child);
    slot.to_child = -1;
    slot.from_child = -1;
    slot.pid = -1;
    slot.live = false;
    slot.deaths += 1;
    return cause;
  }

  void ReleaseSlot(Slot& slot) {
    {
      MutexLock lock(mu);
      slot.leased = false;
    }
    free_cv.NotifyOne();
  }

  /// Marks the pool degraded (inline execution for the rest of the
  /// phase) after a failed spawn. One notice per pool.
  void Degrade(const Status& why) {
    bool log_it = false;
    {
      MutexLock lock(mu);
      degraded = true;
      if (!degraded_logged) {
        degraded_logged = true;
        log_it = true;
      }
    }
    Count("worker.spawn_failures");
    if (log_it) {
      P3C_LOG(kWarning)
          << "worker backend: process spawn failed (" << why.ToString()
          << "); degrading to in-process execution for this phase";
    }
  }

  // -- dispatch -------------------------------------------------------------

  /// Leases a slot, spawning (or respawning with capped exponential
  /// backoff) its worker if needed. Returns nullptr when the pool has
  /// degraded to inline execution. Throws CancelledError when `cancel`
  /// fires while waiting.
  Slot* LeaseSlot(const CancellationToken& cancel) {
    for (;;) {
      cancel.ThrowIfCancelled();
      Slot* chosen = nullptr;
      {
        MutexLock lock(mu);
        if (degraded) return nullptr;
        for (Slot& slot : slots) {
          if (slot.leased) continue;
          // Prefer a live worker over respawning a dead slot.
          if (chosen == nullptr || (!chosen->live && slot.live)) {
            chosen = &slot;
          }
        }
        if (chosen == nullptr) {
          // Predicate-looped wait: wake when a lease frees up or the
          // pool degrades. Cancellation is not signalled through
          // free_cv, so the 50ms bound re-runs the outer loop's
          // cancellation check regardless.
          free_cv.WaitFor(mu, std::chrono::milliseconds(50),
                          [this]() P3C_REQUIRES(mu) {
                            if (degraded) return true;
                            for (const Slot& slot : slots) {
                              if (!slot.leased) return true;
                            }
                            return false;
                          });
          continue;
        }
        chosen->leased = true;
      }
      if (chosen->live) return chosen;
      // Respawn path, outside `mu` (the slot is leased, so it is
      // exclusively ours), re-checking cancellation across the backoff.
      const double backoff = std::min(
          0.02 * static_cast<double>(
                     uint64_t{1} << std::min<uint64_t>(
                         chosen->consecutive_respawns, 6)),
          0.5);
      if (chosen->consecutive_respawns > 0 && backoff > 0.0 &&
          cancel.WaitFor(backoff)) {
        ReleaseSlot(*chosen);
        throw CancelledError();
      }
      chosen->consecutive_respawns += 1;
      Status st;
      {
        MutexLock lock(mu);
        st = SpawnLocked(*chosen);
      }
      if (!st.ok()) {
        Degrade(st);
        ReleaseSlot(*chosen);
        return nullptr;
      }
      Count("worker.respawn_total");
      TraceWorker(*chosen, "worker respawn");
      return chosen;
    }
  }

  /// Ships one task to a worker and waits for its RESULT, policing the
  /// heartbeat. Returns the task's serialized payload, the task's own
  /// failure Status, or an Internal status describing a worker death.
  /// kNotImplemented is the internal "pool degraded, run inline"
  /// marker. Throws CancelledError when the attempt is cancelled
  /// mid-wait (the leased worker is SIGKILLed first — it may be mid-
  /// task and nobody will collect its result).
  Result<std::string> Dispatch(const TaskAttempt& attempt,
                               const TaskContext& ctx) {
    Slot* slot = LeaseSlot(ctx.cancel);
    if (slot == nullptr) {
      return Status::NotImplemented("worker pool degraded");
    }

    const wire::TaskFrame task{static_cast<uint32_t>(attempt.kind),
                               attempt.task_index, attempt.attempt};
    Status sent = wire::WriteFrame(slot->to_child, wire::FrameType::kTask,
                                   wire::EncodeTaskFrame(task));
    if (!sent.ok()) {
      // The worker died between tasks; its pipe is broken. Reap and
      // surface as a crashed attempt so the retry loop respawns.
      const std::string cause = ReapSlot(*slot, 0);
      TraceWorker(*slot, "worker died");
      ReleaseSlot(*slot);
      return Status::Internal(StringPrintf(
          "worker for %s task %zu died before accepting the task (%s)",
          TaskKindName(attempt.kind), attempt.task_index, cause.c_str()));
    }
    TraceWorker(*slot, "task dispatched");

    // Scripted worker kills land here, after the task frame is on the
    // wire, so the worker genuinely dies (or freezes) mid-task.
    if (options.fault_injector != nullptr) {
      const int signum = options.fault_injector->OnWorkerKill(attempt);
      if (signum != 0 && slot->pid > 0) {
        ::kill(slot->pid, signum);
        Count("worker.kill_total");
        TraceWorker(*slot, signum == SIGSTOP ? "worker frozen (injected)"
                                             : "worker killed (injected)");
      }
    }

    const double silence_budget =
        options.heartbeat_seconds > 0.0 ? options.heartbeat_seconds : 10.0;
    double deadline = NowSeconds() + silence_budget;
    char buf[4096];
    for (;;) {
      // Drain every buffered frame before blocking again.
      for (;;) {
        auto next = slot->reader.Next();
        if (!next.ok()) {
          ReapSlot(*slot, SIGKILL);
          TraceWorker(*slot, "worker protocol error");
          ReleaseSlot(*slot);
          return Status::Internal(StringPrintf(
              "worker stream corrupted (%s); worker killed",
              next.status().message().c_str()));
        }
        if (!next->has_value()) break;
        const wire::Frame& frame = **next;
        deadline = NowSeconds() + silence_budget;  // any frame is liveness
        if (frame.type == wire::FrameType::kPing) continue;
        if (frame.type == wire::FrameType::kHello) {
          auto hello = wire::DecodeHelloFrame(frame.payload);
          if (!hello.ok() || hello->version != wire::kVersion) {
            ReapSlot(*slot, SIGKILL);
            ReleaseSlot(*slot);
            return Status::Internal(
                "worker handshake failed (protocol version skew)");
          }
          continue;
        }
        if (frame.type == wire::FrameType::kResult) {
          auto result = wire::DecodeResultFrame(frame.payload);
          if (!result.ok()) {
            ReapSlot(*slot, SIGKILL);
            ReleaseSlot(*slot);
            return Status::Internal(StringPrintf(
                "worker RESULT frame corrupted (%s); worker killed",
                result.status().message().c_str()));
          }
          slot->consecutive_respawns = 0;
          if (result->peak_rss_bytes > 0) {
            GaugeMax("worker.peak_rss_bytes",
                     static_cast<double>(result->peak_rss_bytes));
          }
          TraceWorker(*slot, "task result");
          ReleaseSlot(*slot);
          if (result->status_code != 0) {
            return Status(static_cast<StatusCode>(result->status_code),
                          result->message);
          }
          return std::move(result->payload);
        }
        // Unexpected frame type from a worker: ignore (forward compat).
      }

      if (ctx.cancel.cancelled()) {
        // Deadline kill, speculation loser-kill, or job failure: the
        // worker may be mid-task with nobody left to read its result —
        // kill it; the slot respawns on its next lease.
        ReapSlot(*slot, SIGKILL);
        TraceWorker(*slot, "worker killed (attempt cancelled)");
        ReleaseSlot(*slot);
        ctx.cancel.ThrowIfCancelled();
      }
      if (NowSeconds() > deadline) {
        Count("worker.heartbeat_timeouts");
        const std::string cause = ReapSlot(*slot, SIGKILL);
        TraceWorker(*slot, "worker killed (heartbeat timeout)");
        ReleaseSlot(*slot);
        return Status::Internal(StringPrintf(
            "worker pid went silent for %.2fs on %s task %zu and was "
            "killed (%s)",
            silence_budget, TaskKindName(attempt.kind), attempt.task_index,
            cause.c_str()));
      }

      struct pollfd pfd;
      pfd.fd = slot->from_child;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int rc = ::poll(&pfd, 1, /*timeout_ms=*/50);
      if (rc < 0 && errno != EINTR) {
        ReapSlot(*slot, SIGKILL);
        ReleaseSlot(*slot);
        return Status::IOError(
            StringPrintf("poll on worker pipe: %s", std::strerror(errno)));
      }
      if (rc <= 0) continue;
      const ssize_t n = ::read(slot->from_child, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        // EOF: the worker is dead (crashed, SIGKILLed, or exited).
        const std::string cause = ReapSlot(*slot, 0);
        TraceWorker(*slot, "worker died");
        ReleaseSlot(*slot);
        return Status::Internal(StringPrintf(
            "worker died mid-%s-task %zu (%s)", TaskKindName(attempt.kind),
            attempt.task_index, cause.c_str()));
      }
      slot->reader.Append(buf, static_cast<size_t>(n));
    }
  }

  void ShutdownAllWorkers() {
    MutexLock lock(mu);
    for (Slot& slot : slots) {
      if (!slot.live) continue;
      // Best-effort graceful shutdown; a wedged worker is killed below.
      (void)wire::WriteFrame(slot.to_child, wire::FrameType::kShutdown, "");
    }
    const double deadline = NowSeconds() + 1.0;
    for (Slot& slot : slots) {
      if (!slot.live) continue;
      bool reaped = false;
      while (NowSeconds() < deadline) {
        int wait_status = 0;
        const pid_t rc = ::waitpid(slot.pid, &wait_status, WNOHANG);
        if (rc == slot.pid || (rc < 0 && errno != EINTR)) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!reaped) {
        ::kill(slot.pid, SIGKILL);
        int wait_status = 0;
        while (::waitpid(slot.pid, &wait_status, 0) < 0 && errno == EINTR) {
        }
        Count("worker.kill_total");
      }
      UnregisterWorker(slot.pid);
      if (slot.to_child >= 0) ::close(slot.to_child);
      if (slot.from_child >= 0) ::close(slot.from_child);
      slot.to_child = -1;
      slot.from_child = -1;
      slot.pid = -1;
      slot.live = false;
    }
    slots.clear();
  }
};

WorkerPoolExecutor::WorkerPoolExecutor(WorkerBackendOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {
  if (impl_->options.num_workers == 0) impl_->options.num_workers = 1;
  // A worker that died between tasks leaves a broken pipe behind; the
  // dispatch path handles the EPIPE as a crashed attempt, but only if
  // the default SIGPIPE disposition doesn't kill the driver first.
  ::signal(SIGPIPE, SIG_IGN);
}

WorkerPoolExecutor::~WorkerPoolExecutor() { impl_->ShutdownAllWorkers(); }

void WorkerPoolExecutor::BeginPhase(const std::string& job_name,
                                    TaskKind kind, size_t num_tasks,
                                    PhaseTaskFn run, PhaseCommitFn commit) {
  Impl& impl = *impl_;
  {
    MutexLock lock(impl.mu);
    impl.phase_active = true;
    impl.phase_kind = kind;
    impl.phase_job = job_name;
    impl.phase_remote = run != nullptr && commit != nullptr;
    impl.run = std::move(run);
    impl.commit = std::move(commit);
    impl.degraded = false;
  }
  if (!impl.phase_remote || num_tasks == 0) return;

  // Phase pool: fork now, while the phase's immutable state (input
  // span, merged partitions) is exactly what the tasks will read —
  // the children inherit it copy-on-write. Never more workers than
  // tasks.
  const size_t workers = std::min(impl.options.num_workers,
                                  std::max<size_t>(1, num_tasks));
  MutexLock lock(impl.mu);
  impl.slots.resize(workers);
  for (size_t i = 0; i < workers; ++i) {
    impl.slots[i].index = i;
    const Status st = impl.SpawnLocked(impl.slots[i]);
    if (!st.ok()) {
      impl.degraded = true;
      if (!impl.degraded_logged) {
        impl.degraded_logged = true;
        P3C_LOG(kWarning)
            << "worker backend: process spawn failed (" << st.ToString()
            << "); degrading to in-process execution for this phase";
      }
      {
        MutexLock mlock(impl.metrics_mu);
        impl.metrics.Increment("worker.spawn_failures");
      }
      break;
    }
  }
}

void WorkerPoolExecutor::EndPhase() {
  Impl& impl = *impl_;
  impl.ShutdownAllWorkers();
  MutexLock lock(impl.mu);
  impl.phase_active = false;
  impl.phase_remote = false;
  impl.run = nullptr;
  impl.commit = nullptr;
}

Status WorkerPoolExecutor::RunCopy(const TaskAttempt& attempt,
                                   const TaskContext& ctx,
                                   const TaskBody& inline_body) {
  Impl& impl = *impl_;
  PhaseCommitFn commit;
  {
    MutexLock lock(impl.mu);
    const bool remote = impl.phase_active && impl.phase_remote &&
                        !impl.degraded && impl.phase_kind == attempt.kind &&
                        !impl.slots.empty();
    if (!remote) return inline_body(ctx);
    commit = impl.commit;
  }
  auto payload = impl.Dispatch(attempt, ctx);
  if (!payload.ok()) {
    if (payload.status().code() == StatusCode::kNotImplemented) {
      // Pool degraded mid-phase (spawn failure): inline fallback.
      return inline_body(ctx);
    }
    return payload.status();
  }
  return commit(ctx, attempt.task_index, std::move(*payload));
}

MetricBag WorkerPoolExecutor::SnapshotMetrics() const {
  MutexLock lock(impl_->metrics_mu);
  return impl_->metrics;
}

size_t SignalLiveWorkers(int signum) {
  std::vector<pid_t> pids;
  {
    MutexLock lock(RegistryMutex());
    pids.assign(Registry().begin(), Registry().end());
  }
  size_t signalled = 0;
  for (pid_t pid : pids) {
    if (::kill(pid, signum) == 0) ++signalled;
  }
  return signalled;
}

size_t ReapWorkers() {
  std::vector<pid_t> pids;
  {
    MutexLock lock(RegistryMutex());
    pids.assign(Registry().begin(), Registry().end());
  }
  size_t reaped = 0;
  for (pid_t pid : pids) {
    int wait_status = 0;
    if (::waitpid(pid, &wait_status, WNOHANG) == pid) {
      UnregisterWorker(pid);
      ++reaped;
    }
  }
  return reaped;
}

size_t LiveWorkerCount() {
  MutexLock lock(RegistryMutex());
  return Registry().size();
}

void SetWorkerSpawnFailureForTesting(bool fail) {
  g_force_spawn_failure.store(fail, std::memory_order_relaxed);
}

}  // namespace p3c::mr
