#ifndef P3C_MAPREDUCE_JOB_H_
#define P3C_MAPREDUCE_JOB_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/mapreduce/counters.h"

namespace p3c::mr {

/// Sink for intermediate (key, value) pairs plus the task-local counter
/// channel. One Emitter instance exists per mapper task *attempt*; it is
/// not shared between threads. If the attempt fails, the emitter —
/// records, counters, byte accounting — is discarded and the retry gets
/// a fresh one, which is what makes task side effects exactly-once.
template <typename K, typename V>
class Emitter {
 public:
  virtual ~Emitter() = default;

  /// Emits one intermediate pair into the shuffle.
  virtual void Emit(K key, V value) = 0;

  /// Task-local counters, merged by the runner after the task finishes.
  virtual Counters& counters() = 0;
};

/// User map task over records of type `Record`, emitting (K, V).
///
/// `Setup` receives the whole split before the per-record calls — the hook
/// the MVB job uses to cache its split (§5.5) — and `Cleanup` runs after
/// the last record, which is where split-level aggregates (per-split
/// medians, per-split histograms) are emitted.
///
/// Retry contract (Hadoop task attempts): a fresh instance runs per
/// attempt over the same immutable split, so mappers may fail (throw or
/// leave partial emissions) without corrupting the job — but must not
/// mutate state outside themselves and their emitter.
template <typename Record, typename K, typename V>
class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual void Setup(size_t split_index, std::span<const Record> split,
                     Emitter<K, V>& out) {
    (void)split_index;
    (void)split;
    (void)out;
  }

  virtual void Map(const Record& record, Emitter<K, V>& out) = 0;

  virtual void Cleanup(Emitter<K, V>& out) { (void)out; }
};

/// User reduce task: receives one key with all of its shuffled values and
/// appends output records.
///
/// `values` is a read-only view into the engine's merged partition
/// buffer (zero-copy shuffle): it is valid only for the duration of the
/// call and must not be retained. Because the view is immutable, a
/// failed reduce attempt cannot corrupt the shuffled input — retries
/// re-read the same spans.
template <typename K, typename V, typename Out>
class Reducer {
 public:
  virtual ~Reducer() = default;

  virtual void Reduce(const K& key, std::span<const V> values,
                      std::vector<Out>& out) = 0;
};

/// Optional combiner: collapses one mapper's local values of a key into
/// a single value before the shuffle (Hadoop's combiner contract; must
/// be associative/commutative with the reducer's aggregation). Cuts the
/// shuffle volume of high-fan-in aggregations — see
/// LocalRunner::RunWithCombiner. `values` follows the same view
/// contract as Reducer::Reduce.
template <typename K, typename V>
class Combiner {
 public:
  virtual ~Combiner() = default;

  /// Combines `values` (non-empty) into a single value.
  virtual V Combine(const K& key, std::span<const V> values) = 0;
};

/// Approximate serialized size of a shuffled pair, used for the
/// shuffle-volume accounting in JobMetrics. Specialize/overload for
/// dynamically sized values.
template <typename T>
size_t SerializedSize(const T& value) {
  (void)value;
  return sizeof(T);
}

template <typename T>
size_t SerializedSize(const std::vector<T>& value) {
  return sizeof(size_t) + value.size() * sizeof(T);
}

inline size_t SerializedSize(const std::string& value) {
  return sizeof(size_t) + value.size();
}

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_JOB_H_
