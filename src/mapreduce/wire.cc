#include "src/mapreduce/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "src/common/string_util.h"
#include "src/data/io.h"

namespace p3c::mr::wire {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kTask:
      return "TASK";
    case FrameType::kResult:
      return "RESULT";
    case FrameType::kPing:
      return "PING";
    case FrameType::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  const uint32_t type_u32 = static_cast<uint32_t>(type);
  const uint64_t size = payload.size();
  const uint64_t checksum = data::Fnv1a64(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&version), sizeof(version));
  out.append(reinterpret_cast<const char*>(&type_u32), sizeof(type_u32));
  out.append(reinterpret_cast<const char*>(&size), sizeof(size));
  out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.append(payload.data(), payload.size());
  return out;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  const std::string bytes = EncodeFrame(type, payload);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StringPrintf("writing %s frame: %s",
                                          FrameTypeName(type),
                                          std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::optional<Frame>> FrameReader::Next() {
  // Compact the buffer once consumed bytes dominate, so a long-lived
  // stream never grows without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return std::optional<Frame>{};
  const char* p = buffer_.data() + consumed_;
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("worker frame: bad magic (stream desynced)");
  }
  uint32_t version = 0;
  uint32_t type_u32 = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
  std::memcpy(&version, p + 4, sizeof(version));
  std::memcpy(&type_u32, p + 8, sizeof(type_u32));
  std::memcpy(&size, p + 12, sizeof(size));
  std::memcpy(&checksum, p + 20, sizeof(checksum));
  if (version != kVersion) {
    return Status::IOError(StringPrintf(
        "worker frame: protocol version %u, expected %u", version, kVersion));
  }
  if (type_u32 < static_cast<uint32_t>(FrameType::kHello) ||
      type_u32 > static_cast<uint32_t>(FrameType::kShutdown)) {
    return Status::IOError(
        StringPrintf("worker frame: unknown frame type %u", type_u32));
  }
  if (size > kMaxFramePayload) {
    return Status::IOError(StringPrintf(
        "worker frame: payload size %llu exceeds the %llu-byte bound",
        static_cast<unsigned long long>(size),
        static_cast<unsigned long long>(kMaxFramePayload)));
  }
  if (available < kHeaderBytes + size) return std::optional<Frame>{};
  Frame frame;
  frame.type = static_cast<FrameType>(type_u32);
  frame.payload.assign(p + kHeaderBytes, size);
  consumed_ += kHeaderBytes + size;
  const uint64_t actual =
      data::Fnv1a64(frame.payload.data(), frame.payload.size());
  if (actual != checksum) {
    return Status::IOError(
        StringPrintf("worker %s frame: checksum mismatch",
                     FrameTypeName(frame.type)));
  }
  return std::optional<Frame>{std::move(frame)};
}

void EncodeMetricBag(const MetricBag& bag, WireWriter& writer) {
  writer.PutU64(bag.values().size());
  for (const auto& [name, metric] : bag.values()) {
    writer.PutString(name);
    writer.PutU32(static_cast<uint32_t>(metric.kind));
    writer.PutU64(metric.count);
    writer.PutDouble(metric.sum);
    writer.PutDouble(metric.min);
    writer.PutDouble(metric.max);
    for (uint64_t bucket : metric.buckets) writer.PutU64(bucket);
  }
}

Result<MetricBag> DecodeMetricBag(WireReader& reader) {
  MetricBag bag;
  const uint64_t n = reader.GetU64();
  for (uint64_t i = 0; i < n && reader.status().ok(); ++i) {
    const std::string name = reader.GetString();
    Metric metric;
    const uint32_t kind = reader.GetU32();
    if (kind > static_cast<uint32_t>(MetricKind::kHistogram)) {
      return Status::IOError(
          StringPrintf("metric '%s': unknown kind %u", name.c_str(), kind));
    }
    metric.kind = static_cast<MetricKind>(kind);
    metric.count = reader.GetU64();
    metric.sum = reader.GetDouble();
    metric.min = reader.GetDouble();
    metric.max = reader.GetDouble();
    for (uint64_t& bucket : metric.buckets) bucket = reader.GetU64();
    bag.Set(name, metric);
  }
  P3C_RETURN_NOT_OK(reader.status());
  return bag;
}

std::string EncodeTaskFrame(const TaskFrame& task) {
  WireWriter w;
  w.PutU32(task.kind);
  w.PutU64(task.task_index);
  w.PutU64(task.attempt);
  return w.Take();
}

Result<TaskFrame> DecodeTaskFrame(std::string_view payload) {
  WireReader r(payload, "TASK frame");
  TaskFrame task;
  task.kind = r.GetU32();
  task.task_index = r.GetU64();
  task.attempt = r.GetU64();
  P3C_RETURN_NOT_OK(r.Finish());
  return task;
}

std::string EncodeResultFrame(const ResultFrame& result) {
  WireWriter w;
  w.PutU32(result.status_code);
  w.PutString(result.message);
  w.PutI64(result.peak_rss_bytes);
  EncodeMetricBag(result.counters, w);
  w.PutString(result.payload);
  return w.Take();
}

Result<ResultFrame> DecodeResultFrame(std::string_view payload) {
  WireReader r(payload, "RESULT frame");
  ResultFrame result;
  result.status_code = r.GetU32();
  result.message = r.GetString();
  result.peak_rss_bytes = r.GetI64();
  auto counters = DecodeMetricBag(r);
  P3C_RETURN_NOT_OK(counters.status());
  result.counters = std::move(*counters);
  result.payload = r.GetString();
  P3C_RETURN_NOT_OK(r.Finish());
  return result;
}

std::string EncodeHelloFrame(const HelloFrame& hello) {
  WireWriter w;
  w.PutU64(hello.pid);
  w.PutU32(hello.version);
  return w.Take();
}

Result<HelloFrame> DecodeHelloFrame(std::string_view payload) {
  WireReader r(payload, "HELLO frame");
  HelloFrame hello;
  hello.pid = r.GetU64();
  hello.version = r.GetU32();
  P3C_RETURN_NOT_OK(r.Finish());
  return hello;
}

}  // namespace p3c::mr::wire
