#ifndef P3C_MAPREDUCE_RUNNER_H_
#define P3C_MAPREDUCE_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/logging.h"
#include "src/common/resource.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/common/sync.h"
#include "src/common/threadpool.h"
#include "src/common/trace.h"
#include "src/mapreduce/counters.h"
#include "src/mapreduce/executor.h"
#include "src/mapreduce/fault.h"
#include "src/mapreduce/job.h"
#include "src/mapreduce/metrics.h"
#include "src/mapreduce/partition.h"
#include "src/mapreduce/straggler.h"
#include "src/mapreduce/wire.h"
#include "src/mapreduce/worker_backend.h"

namespace p3c::mr {

/// Execution knobs for the local MapReduce engine.
struct RunnerOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t num_threads = 0;
  /// Records per input split; 0 derives a split size from the data
  /// alone ("we do not artificially split the input files" — splits grow
  /// with the data, §7.5.2): about 32 map tasks per job, at least 1024
  /// records each, independent of the worker count at typical core
  /// counts. Deriving the task count from threads (the pre-§14 policy of
  /// four splits per worker) made every added worker multiply the
  /// number of shuffle runs to merge — the measured scaling inversion.
  size_t records_per_split = 0;
  /// Target records per shuffle merge chunk; 0 means the default
  /// (128 Ki). Each partition's merge is split at sampled key boundaries
  /// into about partition_records / merge_chunk_records chunks that
  /// merge independently (intra-partition parallelism for skewed or
  /// single-partition jobs). The chunk plan never changes job output —
  /// chunks split at key boundaries and concatenate in key order.
  /// Tests pin small values to force many chunks on small inputs.
  size_t merge_chunk_records = 0;
  /// Number of reduce partitions per job; 0 means one partition per
  /// worker thread. Jobs may override per job via ShuffleOptions (the
  /// src/mr wrappers cap it at their key cardinality). The partition
  /// count never changes job output — only how the shuffle and reduce
  /// work are spread across workers.
  size_t num_reducers = 0;
  /// Maximum attempts per task before the job fails — Hadoop's
  /// `mapreduce.{map,reduce}.maxattempts`, default 4. Each map, combine,
  /// and reduce task runs as up to this many attempts; a failed attempt
  /// (thrown exception or non-OK Status) is discarded wholesale and the
  /// task is re-run from its immutable input.
  size_t max_attempts = 4;
  /// Deterministic exponential backoff between attempts of one task:
  /// retry r sleeps min(retry_backoff_seconds * 2^(r-1),
  /// retry_backoff_max_seconds). 0 disables sleeping (tests).
  double retry_backoff_seconds = 0.0;
  double retry_backoff_max_seconds = 0.05;
  /// Wall-clock deadline per task-attempt copy, Hadoop's
  /// `mapreduce.task.timeout` collapsed to elapsed time (there is no
  /// progress reporting in-process). 0 disables. An overdue copy is
  /// cooperatively cancelled by the runner's watchdog, counted in
  /// JobMetrics::killed_attempts / deadline_exceeded, converted to
  /// StatusCode::kDeadlineExceeded, and re-run under the normal
  /// max_attempts loop.
  double task_deadline_seconds = 0.0;
  /// Hadoop-style speculative execution: once an attempt has run
  /// `speculative_slowness_factor ×` the median completed-attempt
  /// duration of its (job, task kind) population, the watchdog launches
  /// a duplicate copy of the SAME attempt on a dedicated thread; the
  /// first copy to finish commits (exactly once, via a CAS commit
  /// slot) and the loser is cancelled. Output is byte-identical to a
  /// non-speculative run: copies execute the same deterministic body
  /// over the same immutable input, and results are always assembled
  /// in task-index order, never finish order.
  bool speculative_execution = false;
  /// Slowness multiple over the median that marks a straggler
  /// (Hadoop's 1.0-progress-score analog). Values <= 1 are treated
  /// as 1 (the CLI rejects them outright).
  double speculative_slowness_factor = 4.0;
  /// Completed attempts of the same (job, kind) required before the
  /// median is trusted.
  size_t speculative_min_samples = 3;
  /// Never speculate before an attempt has run at least this long —
  /// a near-zero median must not turn every task into a speculation
  /// candidate.
  double speculative_min_runtime_seconds = 0.02;
  /// Cap on concurrently running speculative copies (each runs on its
  /// own dedicated thread, never on a pool worker — a speculative copy
  /// queued behind the hung task it is meant to bypass would deadlock
  /// the job).
  size_t max_concurrent_speculative = 2;
  /// Optional fault-injection hook consulted at the start of every task
  /// attempt (see fault.h); the test substrate for the retry machinery.
  FaultInjector* fault_injector = nullptr;
  /// Optional sink for per-job execution metrics.
  MetricsRegistry* metrics = nullptr;
  /// Optional sink for merged framework counters across jobs.
  Counters* counters = nullptr;
  /// Task-execution backend (DESIGN.md §16). kInProcess runs task
  /// bodies inline on the pool threads (the engine's native path);
  /// kProcess runs map and reduce attempts in forked worker processes
  /// — real crash isolation: a SIGKILLed worker is a failed attempt,
  /// retried by the normal machinery. Output and counter JSON are
  /// byte-identical across backends.
  Backend backend = Backend::kInProcess;
  /// Process backend: worker processes per phase pool; 0 means one
  /// worker per pool thread.
  size_t num_workers = 0;
  /// Process backend: a worker silent for this long is declared hung,
  /// SIGKILLed, and respawned (workers heartbeat at a quarter of it).
  double worker_heartbeat_seconds = 10.0;
  /// Heartbeat progress reporting (DESIGN.md §15): every this many
  /// seconds the watchdog thread logs one structured line (job, stage,
  /// records processed, live task attempts, per-scope tracked bytes,
  /// sampled RSS) at kInfo. 0 (the default) disables it entirely —
  /// same zero-cost-when-off gating idiom as the Tracer: no thread is
  /// started and the task paths only test a null pointer.
  double heartbeat_seconds = 0.0;
};

/// In-process, multi-threaded MapReduce engine.
///
/// Preserves the framework semantics the paper's algorithm design relies
/// on: record-parallel mappers over splits with Setup/Map/Cleanup
/// lifecycle, a partitioned sort-based shuffle that groups equal keys,
/// key-grouped reducers, per-phase barriers, counters, and
/// shuffle-volume accounting.
///
/// The shuffle is Hadoop-shaped (partition.h, DESIGN.md §9): a
/// Partitioner routes each map task's committed output into per-reducer
/// partition buffers at map-commit time (key-sorted runs, built inside
/// the map workers), each partition k-way merges its runs in parallel
/// after the map barrier, and reducers consume only their own partition,
/// reading value groups as std::span views into the merged buffer —
/// no per-group copies. Output order is deterministic and independent of
/// the partition count and thread count: within a key, values appear in
/// (map task, emit order) order exactly as a global stable sort would
/// produce, and reducer outputs are stitched back together in global key
/// order by a final deterministic merge over the partitions.
///
/// Fault tolerance mirrors Hadoop's task-attempt model: every map,
/// combine, and reduce task executes as a sequence of attempts, each of
/// which either commits its output atomically or is discarded without a
/// trace — counters, shuffle bytes, and emitted records of failed
/// attempts never reach the job result, so a job that succeeds after
/// retries is byte-identical to a fault-free run. A task that exhausts
/// `RunnerOptions::max_attempts` fails the job with a Status naming the
/// job, task kind, task index, and attempt count; JobMetrics records the
/// attempt/failure/retry totals either way.
///
/// Retryability contract: mapper/reducer/combiner factories may be
/// invoked several times per task (once per attempt) and task input is
/// treated as immutable — reducers see the merged partition through
/// read-only spans, and combiner retries re-read the intact map output
/// (`V` must be copyable when a combiner is used).
///
/// Substitution note (DESIGN.md §2): this replaces the paper's Hadoop
/// cluster; the job decompositions in src/mr are expressed against this
/// API exactly as §5 describes them against Hadoop.
class LocalRunner {
 public:
  explicit LocalRunner(RunnerOptions options = {})
      : options_(std::move(options)), pool_(options_.num_threads) {
    if (options_.backend == Backend::kProcess) {
      WorkerBackendOptions wb;
      wb.num_workers = options_.num_workers > 0 ? options_.num_workers
                                                : pool_.num_threads();
      wb.heartbeat_seconds = options_.worker_heartbeat_seconds;
      wb.fault_injector = options_.fault_injector;
      auto workers = std::make_unique<WorkerPoolExecutor>(std::move(wb));
      worker_executor_ = workers.get();
      executor_ = std::move(workers);
    } else {
      executor_ = std::make_unique<InProcessExecutor>();
    }
  }

  LocalRunner(const LocalRunner&) = delete;
  LocalRunner& operator=(const LocalRunner&) = delete;

  const RunnerOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }
  /// The active task-execution backend ("inprocess" | "process").
  const TaskExecutor& executor() const { return *executor_; }
  /// Driver-side observability of the process backend (worker spawns,
  /// respawns, kills, spawn failures, peak worker RSS). An empty bag on
  /// the in-process backend. Deliberately separate from job counters so
  /// backend bookkeeping never perturbs the deterministic counter JSON.
  MetricBag SnapshotWorkerMetrics() const {
    if (worker_executor_ == nullptr) return MetricBag();
    return worker_executor_->SnapshotMetrics();
  }

  /// Runs a full map-shuffle-reduce job and returns the concatenated
  /// reducer outputs (in key order), or the failure of the first task
  /// that exhausted its attempts. `K` must be strict-weak orderable.
  ///
  /// The factories are invoked once per task *attempt* from worker
  /// threads and must be thread-safe; the produced mapper/reducer
  /// instances are used by a single thread only. `shuffle` overrides the
  /// partitioner and reducer count for this job.
  template <typename Record, typename K, typename V, typename Out>
  Result<std::vector<Out>> Run(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Reducer<K, V, Out>>()>&
          reducer_factory,
      const ShuffleOptions<K>& shuffle = {}) {
    return RunWithCombiner<Record, K, V, Out>(job_name, input, mapper_factory,
                                              reducer_factory, nullptr,
                                              shuffle);
  }

  /// Run() plus a per-mapper combiner: each map task's output is grouped
  /// and collapsed by the combiner before entering the shuffle, so the
  /// shuffle volume (JobMetrics::shuffle_bytes) reflects the combined
  /// records. `combiner_factory` may be null (no combining). The
  /// combiner runs as its own retryable attempt: a crashing combiner is
  /// retried against the intact map output.
  template <typename Record, typename K, typename V, typename Out>
  Result<std::vector<Out>> RunWithCombiner(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Reducer<K, V, Out>>()>&
          reducer_factory,
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory,
      const ShuffleOptions<K>& shuffle = {}) {
    Stopwatch total_watch;
    JobMetrics metrics;
    metrics.job_name = job_name;
    metrics.input_records = input.size();
    const size_t num_partitions = ResolveNumReducers(shuffle.num_reducers);
    metrics.num_reducers = num_partitions;
    JobExecState exec;
    HeartbeatState heartbeat;
    heartbeat.job_name = job_name;
    heartbeat.acct = &exec.acct;
    if (options_.heartbeat_seconds > 0.0) exec.heartbeat = &heartbeat;
    HeartbeatGuard heartbeat_guard(this, &heartbeat);
    Counters job_counters;
    Tracer& tracer = Tracer::Global();
    TraceSpan job_span(
        "job:" + job_name,
        tracer.enabled()
            ? StringPrintf("{\"input_records\": %zu, \"num_reducers\": %zu}",
                           input.size(), num_partitions)
            : std::string());

    const HashPartitioner<K> default_partitioner;
    const Partitioner<K>& partitioner = shuffle.partitioner != nullptr
                                            ? *shuffle.partitioner
                                            : default_partitioner;
    ShuffleBuffers<K, V> buffers(num_partitions, NumSplits(input.size()));

    // ---- Map phase -----------------------------------------------------
    // Each map task's committed (post-combine) output is partitioned and
    // run-sorted inside the map worker, so that part of the shuffle
    // overlaps with other map tasks still running. The commit runs as
    // engine code after the attempts succeeded: a throwing custom
    // Partitioner is a deterministic job failure, not a retryable task
    // fault, and it leaves the buffers untouched.
    Stopwatch map_watch;
    Status map_status = MapPhase<Record, K, V>(
        job_name, input, mapper_factory, combiner_factory, &metrics,
        &job_counters, exec,
        [&](size_t s, std::vector<std::pair<K, V>> pairs) {
          try {
            buffers.CommitMapOutput(s, std::move(pairs), partitioner);
          } catch (const std::exception& e) {
            return Status::InvalidArgument(StringPrintf(
                "job '%s': partitioning map task %zu output failed: %s",
                job_name.c_str(), s, e.what()));
          }
          return Status::OK();
        });
    metrics.map_seconds = map_watch.ElapsedSeconds();
    if (!map_status.ok()) {
      return RecordFailure(metrics, exec.acct, total_watch, map_status);
    }

    // ---- Shuffle: staged chunked merge (DESIGN.md §14) -----------------
    // Plan (per partition) -> chunk merges (parallel across ALL chunks
    // of all partitions, so a single skewed partition still spreads over
    // the pool) -> finalize (per partition). Chunk plans depend only on
    // the data, so the merge work — and the merged bytes — are identical
    // at every thread count.
    Stopwatch shuffle_watch;
    if (exec.heartbeat != nullptr) {
      exec.heartbeat->stage.store("shuffle", std::memory_order_relaxed);
    }
    // Per-partition metrics, O(partitions) doubles — not a hot structure.
    metrics.partition_shuffle_seconds.assign(  // NOLINT(p3c-untracked-hot-alloc)
        num_partitions, 0.0);
    const size_t chunk_records = options_.merge_chunk_records > 0
                                     ? options_.merge_chunk_records
                                     : kDefaultMergeChunkRecords;
    // Shuffle bodies are pure engine compute — no task attempts, nothing
    // that can hang — so they are always capped at hardware concurrency,
    // even in straggler configurations where ExecWidth() leaves the task
    // phases oversubscribed.
    const size_t shuffle_width = ThreadPool::HardwareConcurrency();
    try {
      TraceSpan shuffle_span("shuffle-phase");
      pool_.ParallelForCapped(num_partitions, shuffle_width, /*grain=*/1,
                              [&](size_t p) {
        buffers.PlanMerge(p, chunk_records);
      });
      const size_t total_chunks = buffers.FinishPlan();
      std::vector<double> chunk_seconds(total_chunks, 0.0);
      pool_.ParallelForCapped(total_chunks, shuffle_width, /*grain=*/1,
                              [&](size_t c) {
        Stopwatch chunk_watch;
        buffers.MergeChunk(c);
        chunk_seconds[c] = chunk_watch.ElapsedSeconds();
      });
      buffers.ReleaseRuns();
      for (size_t c = 0; c < total_chunks; ++c) {
        metrics.partition_shuffle_seconds[buffers.ChunkPartition(c)] +=
            chunk_seconds[c];
      }
      pool_.ParallelForCapped(num_partitions, shuffle_width, /*grain=*/1,
                              [&](size_t p) {
        // Per-partition merge spans live on synthetic partition lanes,
        // so reducer-side skew shows up as lane-length imbalance.
        const uint32_t lane =
            Tracer::kPartitionLaneBase + static_cast<uint32_t>(p);
        const bool tracing = Tracer::Global().enabled();
        if (tracing) {
          Tracer::Global().NameLane(
              lane, StringPrintf("shuffle partition %zu", p));
        }
        TraceSpan partition_span(
            tracing ? StringPrintf("merge partition %zu", p) : std::string(),
            std::string(), lane);
        Stopwatch finalize_watch;
        buffers.FinalizePartition(p);
        metrics.partition_shuffle_seconds[p] +=
            finalize_watch.ElapsedSeconds();
      });
    } catch (const std::exception& e) {
      metrics.shuffle_seconds = shuffle_watch.ElapsedSeconds();
      return RecordFailure(
          metrics, exec.acct, total_watch,
          Status::Internal(StringPrintf("job '%s': shuffle merge failed: %s",
                                        job_name.c_str(), e.what())));
    }
    metrics.shuffle_seconds = shuffle_watch.ElapsedSeconds();
    // Skew metrics, O(partitions) counters — not a hot structure.
    metrics.partition_records.resize(  // NOLINT(p3c-untracked-hot-alloc)
        num_partitions);
    uint64_t shuffled_total = 0;
    uint64_t shuffled_max = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      const uint64_t records = buffers.partition(p).values.size();
      metrics.partition_records[p] = records;
      shuffled_total += records;
      shuffled_max = std::max(shuffled_max, records);
    }
    metrics.partition_skew =
        shuffled_total == 0 ? 0.0
                            : static_cast<double>(shuffled_max) *
                                  static_cast<double>(num_partitions) /
                                  static_cast<double>(shuffled_total);

    // ---- Reduce phase --------------------------------------------------
    // One reduce task per non-empty partition; the task index is the
    // partition index (stable addressing for fault injection). Reducers
    // read value groups as spans into the merged buffer — zero-copy, and
    // naturally retry-safe because the views are immutable.
    Stopwatch reduce_watch;
    if (exec.heartbeat != nullptr) {
      exec.heartbeat->stage.store("reduce", std::memory_order_relaxed);
    }
    std::vector<std::vector<Out>> task_outputs(num_partitions);
    // Per-group output end offsets, recorded so the final merge can
    // stitch per-key output slices back into global key order.
    std::vector<std::vector<size_t>> task_group_ends(num_partitions);
    FailureSlot failure(&exec.job_cancel);

    // Shared attempt computation of one reduce partition: the inline
    // body and the worker-process child run exactly this (the child
    // with a default, never-cancelling token — workers are stopped
    // with signals, not cooperatively).
    auto compute_partition = [&](size_t p, const CancellationToken& cancel) {
      const MergedPartition<K, V>& part = buffers.partition(p);
      std::unique_ptr<Reducer<K, V, Out>> reducer = reducer_factory();
      // Fresh output per attempt copy; the merged partition is
      // read-only so a failed attempt leaves the shuffled input
      // intact, and racing speculative copies never share output
      // buffers.
      std::pair<std::vector<Out>, std::vector<size_t>> result;
      // Group-end offsets: one size_t per group, dwarfed by the
      // charged merged partition the groups point into.
      result.second.reserve(  // NOLINT(p3c-untracked-hot-alloc)
          part.num_groups());
      for (size_t g = 0; g < part.num_groups(); ++g) {
        if ((g & 63u) == 0) cancel.ThrowIfCancelled();
        reducer->Reduce(part.key(g), part.group_values(g), result.first);
        result.second.push_back(result.first.size());
      }
      return result;
    };

    // Remote form of the reduce phase, when Out can cross the process
    // boundary: the child reduces its partition from the merged
    // buffers it inherited at fork and ships back the outputs plus
    // group-end offsets; the driver decodes and commits through the
    // same CAS slot as the inline body.
    PhaseTaskFn reduce_run;
    PhaseCommitFn reduce_commit;
    if constexpr (wire::kIsWireSerializable<Out>) {
      reduce_run = [&](uint64_t p) -> Result<std::string> {
        auto result =
            compute_partition(static_cast<size_t>(p), CancellationToken{});
        wire::WireWriter w;
        w.Put(result.first);
        w.Put(std::vector<uint64_t>(result.second.begin(),
                                    result.second.end()));
        return w.Take();
      };
      reduce_commit = [&task_outputs, &task_group_ends](
                          const TaskContext& ctx, uint64_t p,
                          std::string payload) -> Status {
        wire::WireReader r(payload, "reduce task payload");
        std::vector<Out> out;
        std::vector<uint64_t> ends;
        r.Get(&out);
        r.Get(&ends);
        P3C_RETURN_NOT_OK(r.Finish());
        ctx.Commit([&] {
          task_outputs[p] = std::move(out);
          // One u64 per reduce group, dwarfed by task_outputs above;
          // deliberately untracked (the size_t/uint64_t conversion is
          // why this is an assign and not a move).
          task_group_ends[p].assign(  // NOLINT(p3c-untracked-hot-alloc)
              ends.begin(), ends.end());
        });
        return Status::OK();
      };
    }

    {
      TraceSpan reduce_span("reduce-phase");
      ScopedExecutorPhase reduce_phase(
          executor_.get(), job_name, TaskKind::kReduce, num_partitions,
          std::move(reduce_run), std::move(reduce_commit));
      pool_.ParallelForCapped(num_partitions, ExecWidth(), /*grain=*/1,
                              [&](size_t p) {
        const MergedPartition<K, V>& part = buffers.partition(p);
        if (part.num_groups() == 0) return;
        if (failure.has_failed()) return;
        // Reduce attempts render on the same partition lane as the
        // partition's shuffle merge (stable addressing: task index ==
        // partition index).
        const uint32_t lane =
            Tracer::kPartitionLaneBase + static_cast<uint32_t>(p);
        Status st = ExecuteTask(
            job_name, TaskKind::kReduce, p, exec,
            [&](const TaskContext& ctx) {
              auto result = compute_partition(p, ctx.cancel);
              ctx.Commit([&] {
                task_outputs[p] = std::move(result.first);
                task_group_ends[p] = std::move(result.second);
              });
              return Status::OK();
            },
            lane);
        if (st.ok() && exec.heartbeat != nullptr) {
          exec.heartbeat->records.fetch_add(part.values.size(),
                                            std::memory_order_relaxed);
        }
        if (!st.ok()) failure.Set(std::move(st));
      });
    }
    if (failure.has_failed()) {
      metrics.reduce_seconds = reduce_watch.ElapsedSeconds();
      return RecordFailure(metrics, exec.acct, total_watch, failure.Take());
    }

    // ---- Output merge: partition slices back into global key order ----
    // Keys are unique across partitions (equal keys share a partition),
    // so merging the partitions' sorted group keys and concatenating
    // each group's output slice reproduces exactly the key-ordered
    // output of a single global sort — byte-identical for any partition
    // count, partitioner, and thread count.
    std::vector<Out> output;
    {
      if (exec.heartbeat != nullptr) {
        exec.heartbeat->stage.store("output-merge", std::memory_order_relaxed);
      }
      TraceSpan merge_span("output-merge");
      size_t total_out = 0;
      for (const auto& t : task_outputs) total_out += t.size();
      // The stitched output coexists with the per-task outputs until
      // the moves below complete, so its top-level bytes are a real
      // peak; charge them to the emitter scope for the window.
      resource::ScopedBytes output_mem{resource::MemScope::kEmitter};
      output_mem.Set(static_cast<int64_t>(total_out * sizeof(Out)));
      output.reserve(total_out);
      struct Cursor {
        size_t p;
        size_t g;
      };
      std::vector<Cursor> heap;
      for (size_t p = 0; p < num_partitions; ++p) {
        if (buffers.partition(p).num_groups() > 0) heap.push_back({p, 0});
      }
      const auto after = [&buffers](const Cursor& a, const Cursor& b) {
        return buffers.partition(b.p).key(b.g) <
               buffers.partition(a.p).key(a.g);
      };
      std::make_heap(heap.begin(), heap.end(), after);
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), after);
        Cursor cur = heap.back();
        heap.pop_back();
        auto& slice = task_outputs[cur.p];
        const auto& ends = task_group_ends[cur.p];
        const size_t begin = cur.g == 0 ? 0 : ends[cur.g - 1];
        output.insert(output.end(),
                      std::make_move_iterator(slice.begin() + begin),
                      std::make_move_iterator(slice.begin() + ends[cur.g]));
        if (++cur.g < buffers.partition(cur.p).num_groups()) {
          heap.push_back(cur);
          std::push_heap(heap.begin(), heap.end(), after);
        }
      }
    }
    metrics.reduce_seconds = reduce_watch.ElapsedSeconds();
    metrics.output_records = output.size();
    FinishSucceeded(metrics, exec.acct, total_watch, job_counters);
    return output;
  }

  /// Runs a map-only job (the paper's OD job, §5.5): the mappers'
  /// emissions are the job output, sorted by key for determinism. Each
  /// split's output is sorted inside its map worker (a stable per-split
  /// run); the only serial work left is the final k-way merge, whose
  /// lower-run-index tie-break reproduces the order of a global stable
  /// sort exactly.
  template <typename Record, typename K, typename V>
  Result<std::vector<std::pair<K, V>>> RunMapOnly(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory) {
    Stopwatch total_watch;
    JobMetrics metrics;
    metrics.job_name = job_name;
    metrics.input_records = input.size();
    metrics.num_reducers = 0;
    JobExecState exec;
    HeartbeatState heartbeat;
    heartbeat.job_name = job_name;
    heartbeat.acct = &exec.acct;
    if (options_.heartbeat_seconds > 0.0) exec.heartbeat = &heartbeat;
    HeartbeatGuard heartbeat_guard(this, &heartbeat);
    Counters job_counters;
    TraceSpan job_span(
        "job:" + job_name,
        Tracer::Global().enabled()
            ? StringPrintf("{\"input_records\": %zu, \"map_only\": true}",
                           input.size())
            : std::string());

    std::vector<std::vector<std::pair<K, V>>> runs(NumSplits(input.size()));
    Stopwatch map_watch;
    Status map_status = MapPhase<Record, K, V>(
        job_name, input, mapper_factory, nullptr, &metrics, &job_counters,
        exec, [&runs](size_t s, std::vector<std::pair<K, V>> pairs) {
          std::stable_sort(
              pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
          runs[s] = std::move(pairs);
          return Status::OK();
        });
    metrics.map_seconds = map_watch.ElapsedSeconds();
    if (!map_status.ok()) {
      return RecordFailure(metrics, exec.acct, total_watch, map_status);
    }

    Stopwatch shuffle_watch;
    if (exec.heartbeat != nullptr) {
      exec.heartbeat->stage.store("output-merge", std::memory_order_relaxed);
    }
    std::vector<std::pair<K, V>> pairs;
    {
      TraceSpan merge_span("output-merge");
      pairs = MergeSortedRuns(std::move(runs));
    }
    metrics.shuffle_seconds = shuffle_watch.ElapsedSeconds();

    metrics.output_records = pairs.size();
    FinishSucceeded(metrics, exec.acct, total_watch, job_counters);
    return pairs;
  }

  /// Number of splits the engine would cut `n` records into.
  size_t NumSplits(size_t n) const {
    if (n == 0) return 0;
    const size_t per_split = SplitSize(n);
    return (n + per_split - 1) / per_split;
  }

  /// Reduce-partition count a job gets when neither the job's
  /// ShuffleOptions nor RunnerOptions::num_reducers overrides it: one
  /// partition per worker thread. Job wrappers cap their per-job reducer
  /// count against this (e.g. min(number of distinct keys, default)).
  size_t DefaultNumReducers() const { return pool_.num_threads(); }

 private:
  /// Attempt/failure/retry totals of one job, accumulated lock-free from
  /// worker threads and copied into JobMetrics when the job finishes.
  /// `failures` counts genuine failures (thrown exception / non-OK
  /// Status); engine kills (deadline, speculation loser) count in
  /// `killed` instead so the two causes stay distinguishable, exactly
  /// like Hadoop's FAILED vs KILLED attempt states.
  struct AttemptAccounting {
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> retried{0};
    std::atomic<uint64_t> speculative{0};
    std::atomic<uint64_t> killed{0};
    std::atomic<uint64_t> deadline_exceeded{0};
  };

  /// Live progress counters one job exposes to the heartbeat sampler.
  /// All relaxed atomics — the sampler renders an instantaneous
  /// snapshot, never a synchronized one. `stage` holds string literals
  /// only (static storage), so the sampler can read it lock-free.
  struct HeartbeatState {
    std::string job_name;
    std::atomic<const char*> stage{"map"};
    std::atomic<uint64_t> records{0};
    std::atomic<int64_t> live_attempts{0};
    const AttemptAccounting* acct = nullptr;
  };

  /// Per-job execution state shared by every task of the job: the
  /// attempt accounting, the completed-duration populations feeding
  /// speculation, the job-wide cancellation source that wakes
  /// retry-backoff sleepers the moment the job has already failed, and
  /// the heartbeat hook (null unless --heartbeat-seconds is set — the
  /// task paths pay one null test when heartbeat is off).
  struct JobExecState {
    AttemptAccounting acct;
    TaskDurationStats durations[3];  ///< indexed by TaskKind
    CancellationSource job_cancel;
    HeartbeatState* heartbeat = nullptr;
  };

  /// Starts the heartbeat sampler on the runner's watchdog thread for
  /// one job and stops it on scope exit; inert when heartbeat_seconds
  /// is 0. Declared after the HeartbeatState it samples, so the
  /// sampler is always stopped before the state dies.
  class HeartbeatGuard {
   public:
    HeartbeatGuard(LocalRunner* runner, const HeartbeatState* state) {
      if (runner->options_.heartbeat_seconds <= 0.0) return;
      watchdog_ = &runner->watchdog_;
      watchdog_->StartSampler(runner->options_.heartbeat_seconds,
                              [state] { EmitHeartbeat(*state); });
    }
    ~HeartbeatGuard() {
      if (watchdog_ != nullptr) watchdog_->StopSampler();
    }

    HeartbeatGuard(const HeartbeatGuard&) = delete;
    HeartbeatGuard& operator=(const HeartbeatGuard&) = delete;

   private:
    TaskWatchdog* watchdog_ = nullptr;
  };

  /// One heartbeat line: progress counters, tracked per-scope bytes
  /// (when the MemoryTracker is on), and sampled RSS (where /proc
  /// exists). Runs on the watchdog thread under its mutex — reads
  /// relaxed atomics, formats, logs; nothing blocking.
  static void EmitHeartbeat(const HeartbeatState& state) {
    std::string line = StringPrintf(
        "heartbeat job=%s stage=%s records=%llu live_attempts=%lld "
        "attempts=%llu",
        state.job_name.c_str(), state.stage.load(std::memory_order_relaxed),
        static_cast<unsigned long long>(
            state.records.load(std::memory_order_relaxed)),
        static_cast<long long>(
            state.live_attempts.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            state.acct == nullptr
                ? 0
                : state.acct->attempts.load(std::memory_order_relaxed)));
    const resource::MemoryTracker& tracker =
        resource::MemoryTracker::Global();
    if (tracker.enabled()) line += " mem{" + tracker.DebugString() + "}";
    if (const auto rss = resource::MemoryTracker::SampleRss()) {
      line += StringPrintf(" rss_bytes=%lld",
                           static_cast<long long>(rss->vm_rss_bytes));
    }
    P3C_LOG(kInfo) << line;
  }

  /// First-error-wins slot shared by the tasks of one phase: the first
  /// task to exhaust its attempts parks its Status here and later tasks
  /// short-circuit via has_failed(). Setting the slot also cancels the
  /// job's cancellation source (when wired), so workers sleeping in
  /// retry backoff wake immediately instead of delaying the failure.
  class FailureSlot {
   public:
    FailureSlot() = default;
    explicit FailureSlot(CancellationSource* wake) : wake_(wake) {}

    void Set(Status status) {
      {
        MutexLock lock(mu_);
        if (!failed_.load(std::memory_order_relaxed)) {
          status_ = std::move(status);
          failed_.store(true, std::memory_order_release);
        }
      }
      if (wake_ != nullptr) wake_->Cancel();
    }
    bool has_failed() const {
      return failed_.load(std::memory_order_acquire);
    }
    Status Take() {
      MutexLock lock(mu_);
      return status_;
    }

   private:
    /// Leaf lock (Cancel() is called after it is released, so the
    /// cancellation mutex is never nested under it).
    Mutex mu_{"FailureSlot::mu_"};
    Status status_ P3C_GUARDED_BY(mu_);
    /// Atomic (not guarded): has_failed() is the workers' per-task
    /// short-circuit poll and must stay lock-free.
    std::atomic<bool> failed_{false};
    CancellationSource* wake_ = nullptr;
  };

  /// Kill flags of one attempt copy. The watchdog (deadline) or the
  /// rival copy (speculation) sets the flag explaining WHY before
  /// cancelling, so the resolution can classify a cancelled copy.
  struct CopyControl {
    CancellationSource cancel;
    std::atomic<bool> deadline_killed{false};
    std::atomic<bool> loser_killed{false};
  };

  /// How one attempt copy ended: its status, and whether it ended by
  /// cooperative cancellation (CancelledError) rather than on its own.
  struct CopyOutcome {
    Status status;
    bool cancelled = false;
  };

  /// Rendezvous between the primary copy (inline on the pool worker)
  /// and the speculative copy (dedicated thread, launched by the
  /// watchdog). Guarded by `mu`; the worker always joins `spec_thread`
  /// before the attempt resolves, so copy-local state outlives both
  /// copies.
  /// Lock order: the watchdog's launch closure takes `mu` while
  /// holding TaskWatchdog::mu_, so `mu` sits below the watchdog lock;
  /// nothing is acquired while `mu` is held.
  struct AttemptRace {
    Mutex mu{"AttemptRace::mu"};
    CondVar cv;
    bool spec_launched P3C_GUARDED_BY(mu) = false;
    bool spec_done P3C_GUARDED_BY(mu) = false;
    CopyOutcome spec_outcome P3C_GUARDED_BY(mu);
    std::thread spec_thread P3C_GUARDED_BY(mu);
    std::shared_ptr<CopyControl> spec_ctl P3C_GUARDED_BY(mu);
  };

  // TaskContext and TaskBody (the per-copy view and the in-memory body
  // form) live in executor.h since the backend split — they are the
  // currency both backends trade in.

  /// Auto split policy (SplitSize): ~32 map tasks per job, never tiny.
  static constexpr size_t kDefaultTargetSplits = 32;
  static constexpr size_t kMinSplitRecords = 1024;
  /// Default shuffle merge chunk target (RunnerOptions::
  /// merge_chunk_records == 0): big enough that chunk bookkeeping is
  /// noise, small enough that a 1M-record single-partition merge still
  /// yields ~8 parallelizable chunks.
  static constexpr size_t kDefaultMergeChunkRecords = size_t{128} * 1024;

  size_t SplitSize(size_t n) const {
    if (options_.records_per_split > 0) return options_.records_per_split;
    // Thread-count-independent by design (DESIGN.md §14): the map-task
    // count is derived from the data, so the number of sorted runs the
    // shuffle merges — and with it the merge work — stays flat as
    // workers are added. (Beyond 8 workers the task count grows again
    // purely to keep every worker busy.)
    const size_t target_tasks =
        std::max<size_t>(kDefaultTargetSplits, pool_.num_threads() * 4);
    const size_t per_split = (n + target_tasks - 1) / target_tasks;
    return std::max<size_t>(kMinSplitRecords, per_split);
  }

  /// Claimant cap for the task phases (map/reduce): the attempts are
  /// CPU-bound, so claimants beyond the machine's core count add context
  /// switches without adding throughput — `--threads 8` on a 1-core box
  /// must not run slower than `--threads 1`. The straggler machinery is
  /// the deliberate exception: deadline kills and speculative copies
  /// assume a victim can sit on a lane while its replacement proceeds,
  /// so those configurations keep the full (oversubscribed) pool.
  size_t ExecWidth() const {
    if (options_.speculative_execution ||
        options_.task_deadline_seconds > 0) {
      return 0;  // uncapped
    }
    return ThreadPool::HardwareConcurrency();
  }

  /// Effective reduce-partition count: per-job override, then
  /// RunnerOptions::num_reducers, then one partition per worker.
  size_t ResolveNumReducers(size_t job_override) const {
    if (job_override > 0) return job_override;
    if (options_.num_reducers > 0) return options_.num_reducers;
    return pool_.num_threads();
  }

  /// Deterministic exponential backoff before retry number `retry`
  /// (1-based): min(base * 2^(retry-1), max). No jitter — retry timing
  /// must not introduce nondeterminism into tests. The sleep waits on
  /// the job's cancellation token, so a job that has already failed
  /// (FailureSlot::Set) wakes its sleeping workers immediately instead
  /// of holding a pool thread hostage for the full backoff.
  void SleepBackoff(size_t retry, const CancellationToken& wake) const {
    double seconds = options_.retry_backoff_seconds;
    if (seconds <= 0.0) return;
    for (size_t r = 1; r < retry; ++r) seconds *= 2.0;
    seconds = std::min(seconds, options_.retry_backoff_max_seconds);
    if (seconds > 0.0) wake.WaitFor(seconds);
  }

  bool StragglerControlEnabled() const {
    return options_.task_deadline_seconds > 0.0 ||
           options_.speculative_execution;
  }

  /// Runs one task as up to `max_attempts` attempts of `body`. Each
  /// attempt first consults the fault injector, then runs the body;
  /// exceptions from either are converted to Status so a crashing task
  /// is indistinguishable from a cleanly failing one. The body must
  /// publish side effects only through TaskContext::Commit on its
  /// success path (attempt isolation is the body's contract; the loop
  /// supplies the retry policy, the watchdog supplies deadlines and
  /// speculation).
  ///
  /// Tracing: each attempt copy is its own span on `lane` (0 = the
  /// executing thread's lane; reduce tasks pass their partition lane),
  /// a retry is stitched to the attempt it replaces with a "task-retry"
  /// flow arrow, and a speculative copy is stitched to its launch
  /// decision with a "speculative-copy" flow arrow.
  Status ExecuteTask(const std::string& job_name, TaskKind kind, size_t task,
                     JobExecState& exec, const TaskBody& body,
                     uint32_t lane = 0) {
    const size_t max_attempts = std::max<size_t>(1, options_.max_attempts);
    const CancellationToken job_token = exec.job_cancel.token();
    std::atomic<bool> commit_slot{false};
    Status last;
    uint64_t pending_flow = 0;
    for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) SleepBackoff(attempt, job_token);
      Stopwatch attempt_watch;
      Status st = RunAttemptRace(job_name, kind, task, attempt, exec, body,
                                 lane, commit_slot, pending_flow);
      if (st.ok()) {
        if (options_.speculative_execution) {
          exec.durations[static_cast<size_t>(kind)].Add(
              attempt_watch.ElapsedSeconds());
        }
        return st;
      }
      if (attempt == 0 && max_attempts > 1) {
        exec.acct.retried.fetch_add(1, std::memory_order_relaxed);
      }
      last = std::move(st);
    }
    return Status(
        last.code(),
        StringPrintf("job '%s': %s task %zu failed after %zu attempt(s): %s",
                     job_name.c_str(), TaskKindName(kind), task, max_attempts,
                     last.message().c_str()));
  }

  /// One attempt of one task, run as a race between the primary copy
  /// (inline, on the calling pool worker) and at most one speculative
  /// copy (dedicated thread, launched by the watchdog when the primary
  /// looks like a straggler). The attempt succeeds when EITHER copy
  /// succeeds; the commit slot guarantees exactly one of them
  /// published. The loser is cancelled and counted as killed, never as
  /// failed. Always joins the speculative thread before returning, so
  /// attempt-local state (the body's captures, the race object) is
  /// never touched after the attempt resolves.
  Status RunAttemptRace(const std::string& job_name, TaskKind kind,
                        size_t task, size_t attempt, JobExecState& exec,
                        const TaskBody& body, uint32_t lane,
                        std::atomic<bool>& commit_slot,
                        uint64_t& pending_flow) {
    auto primary_ctl = std::make_shared<CopyControl>();
    auto race = std::make_shared<AttemptRace>();
    Tracer& tracer = Tracer::Global();
    TaskWatchdog* watchdog =
        StragglerControlEnabled() ? &watchdog_ : nullptr;
    uint64_t entry_id = 0;
    if (watchdog != nullptr) {
      TaskWatchdog::Entry entry;
      entry.deadline_seconds = options_.task_deadline_seconds;
      entry.kill = MakeKillClosure(primary_ctl, job_name, kind, task, attempt,
                                   /*speculative=*/false, lane);
      if (options_.speculative_execution) {
        entry.stats = &exec.durations[static_cast<size_t>(kind)];
        entry.slowness_factor = options_.speculative_slowness_factor;
        entry.min_samples = options_.speculative_min_samples;
        entry.min_runtime_seconds = options_.speculative_min_runtime_seconds;
        entry.max_concurrent = std::max<size_t>(
            1, options_.max_concurrent_speculative);
        // Runs on the watchdog thread, under the watchdog mutex. Spawns
        // the speculative copy on its own thread — NEVER on the pool,
        // where it could queue behind the very straggler it bypasses.
        entry.launch = [this, race, primary_ctl, &job_name, kind, task,
                        attempt, &exec, &body, lane, &commit_slot,
                        watchdog] {
          LaunchSpeculativeCopy(race, primary_ctl, job_name, kind, task,
                                attempt, exec, body, lane, commit_slot,
                                watchdog);
        };
      }
      entry_id = watchdog->Register(std::move(entry));
    }

    CopyOutcome primary =
        RunAttemptCopy(job_name, kind, task, attempt, /*speculative=*/false,
                       primary_ctl, exec, body, lane, commit_slot,
                       &pending_flow, /*spec_flow=*/0);
    if (watchdog != nullptr) watchdog->Deregister(entry_id);

    // Resolve the race. Deregister happened first, so spec_launched is
    // stable: no new launch can occur, and any launch that did occur
    // has fully stored the thread handle (both run under the watchdog
    // mutex).
    bool spec_launched = false;
    CopyOutcome spec;
    std::shared_ptr<CopyControl> spec_ctl;
    std::thread spec_thread;
    {
      MutexLock lock(race->mu);
      spec_launched = race->spec_launched;
      if (spec_launched) {
        spec_ctl = race->spec_ctl;
        if (primary.status.ok() && !race->spec_done) {
          // Primary won; the speculative copy is the loser.
          spec_ctl->loser_killed.store(true, std::memory_order_relaxed);
          spec_ctl->cancel.Cancel();
        }
        race->cv.Wait(race->mu,
                      [&race]() P3C_REQUIRES(race->mu) {
                        return race->spec_done;
                      });
        spec = std::move(race->spec_outcome);
        spec_thread = std::move(race->spec_thread);
      }
    }
    if (spec_thread.joinable()) spec_thread.join();

    // Classify both copies for the accounting (Hadoop FAILED vs
    // KILLED): a cancelled copy was killed by the engine, anything
    // else that ended non-OK genuinely failed.
    ClassifyCopy(exec.acct, primary, *primary_ctl);
    if (spec_launched) ClassifyCopy(exec.acct, spec, *spec_ctl);

    const bool primary_ok = primary.status.ok();
    const bool spec_ok = spec_launched && spec.status.ok();
    if (primary_ok || spec_ok) return Status::OK();

    Status st = FailureStatusFor(primary, *primary_ctl);
    if (tracer.enabled()) {
      tracer.RecordInstant(
          StringPrintf("%s task %zu attempt %zu failed", TaskKindName(kind),
                       task, attempt),
          StringPrintf("{\"job\": \"%s\", \"error\": \"%s\"}",
                       JsonEscape(job_name).c_str(),
                       JsonEscape(st.message()).c_str()),
          lane);
      if (attempt + 1 < std::max<size_t>(1, options_.max_attempts)) {
        pending_flow = tracer.NextFlowId();
        tracer.RecordFlowStart(pending_flow, "task-retry", lane);
      }
    }
    return st;
  }

  /// Executes one copy of one attempt: fault injector, then body, with
  /// every exception converted to a CopyOutcome. CancelledError is the
  /// cooperative-cancellation channel and is flagged separately so the
  /// resolution can tell a killed copy from a failed one.
  CopyOutcome RunAttemptCopy(const std::string& job_name, TaskKind kind,
                             size_t task, size_t attempt, bool speculative,
                             const std::shared_ptr<CopyControl>& ctl,
                             JobExecState& exec, const TaskBody& body,
                             uint32_t lane, std::atomic<bool>& commit_slot,
                             uint64_t* pending_flow, uint64_t spec_flow) {
    exec.acct.attempts.fetch_add(1, std::memory_order_relaxed);
    if (speculative) {
      exec.acct.speculative.fetch_add(1, std::memory_order_relaxed);
    }
    if (exec.heartbeat != nullptr) {
      exec.heartbeat->live_attempts.fetch_add(1, std::memory_order_relaxed);
    }
    Tracer& tracer = Tracer::Global();
    const bool tracing = tracer.enabled();
    // Speculative copies run on their own thread and therefore on
    // their own trace lane; forcing them onto the primary's lane would
    // overlap two concurrent spans on one row.
    const uint32_t copy_lane = speculative ? 0 : lane;
    TraceSpan attempt_span(
        tracing ? StringPrintf("%s task %zu attempt %zu%s",
                               TaskKindName(kind), task, attempt,
                               speculative ? " (speculative)" : "")
                : std::string(),
        tracing ? StringPrintf("{\"job\": \"%s\"}",
                               JsonEscape(job_name).c_str())
                : std::string(),
        copy_lane);
    if (tracing && pending_flow != nullptr && *pending_flow != 0) {
      tracer.RecordFlowEnd(*pending_flow, "task-retry", copy_lane);
      *pending_flow = 0;
    }
    if (tracing && spec_flow != 0) {
      tracer.RecordFlowEnd(spec_flow, "speculative-copy", copy_lane);
    }
    TaskContext ctx;
    ctx.attempt = attempt;
    ctx.speculative = speculative;
    ctx.cancel = ctl->cancel.token();
    ctx.commit_slot = &commit_slot;
    CopyOutcome out;
    try {
      Status st;
      if (options_.fault_injector != nullptr) {
        st = options_.fault_injector->OnAttemptStart(TaskAttempt{
            job_name, kind, task, attempt, speculative, ctx.cancel});
      }
      if (st.ok()) {
        // The backend seam: the in-process executor runs `body` inline
        // right here; the process backend ships the task to a worker
        // process (falling back to `body` for task kinds without an
        // installed remote form — combine tasks, degraded pools).
        st = executor_->RunCopy(
            TaskAttempt{job_name, kind, task, attempt, speculative,
                        ctx.cancel},
            ctx, body);
      }
      out.status = std::move(st);
    } catch (const CancelledError&) {
      out.status = Status::Internal("task attempt cancelled");
      out.cancelled = true;
    } catch (const std::exception& e) {
      out.status =
          Status::Internal(StringPrintf("uncaught exception: %s", e.what()));
    } catch (...) {
      out.status = Status::Internal("uncaught non-standard exception");
    }
    if (exec.heartbeat != nullptr) {
      exec.heartbeat->live_attempts.fetch_sub(1, std::memory_order_relaxed);
    }
    return out;
  }

  /// Launched on the watchdog thread (under the watchdog mutex) when
  /// the primary copy looks like a straggler. Stores the speculative
  /// thread handle into the race under its mutex; the primary joins it
  /// at resolution.
  void LaunchSpeculativeCopy(const std::shared_ptr<AttemptRace>& race,
                             const std::shared_ptr<CopyControl>& primary_ctl,
                             const std::string& job_name, TaskKind kind,
                             size_t task, size_t attempt, JobExecState& exec,
                             const TaskBody& body, uint32_t lane,
                             std::atomic<bool>& commit_slot,
                             TaskWatchdog* watchdog) {
    MutexLock lock(race->mu);
    if (race->spec_launched) return;
    race->spec_launched = true;
    race->spec_ctl = std::make_shared<CopyControl>();
    std::shared_ptr<CopyControl> spec_ctl = race->spec_ctl;
    Tracer& tracer = Tracer::Global();
    uint64_t flow = 0;
    if (tracer.enabled()) {
      flow = tracer.NextFlowId();
      tracer.RecordInstant(
          StringPrintf("speculating %s task %zu attempt %zu",
                       TaskKindName(kind), task, attempt),
          StringPrintf("{\"job\": \"%s\"}", JsonEscape(job_name).c_str()),
          lane);
      tracer.RecordFlowStart(flow, "speculative-copy", lane);
    }
    race->spec_thread = std::thread([this, race, primary_ctl, spec_ctl,
                                     &job_name, kind, task, attempt, &exec,
                                     &body, lane, &commit_slot, watchdog,
                                     flow] {
      // The speculative copy gets its own deadline entry — a hung
      // speculative copy must be killable too.
      uint64_t spec_entry = 0;
      if (options_.task_deadline_seconds > 0.0) {
        TaskWatchdog::Entry entry;
        entry.deadline_seconds = options_.task_deadline_seconds;
        entry.kill = MakeKillClosure(spec_ctl, job_name, kind, task, attempt,
                                     /*speculative=*/true, /*lane=*/0);
        spec_entry = watchdog->Register(std::move(entry));
      }
      CopyOutcome out = RunAttemptCopy(job_name, kind, task, attempt,
                                       /*speculative=*/true, spec_ctl, exec,
                                       body, lane, commit_slot,
                                       /*pending_flow=*/nullptr, flow);
      if (spec_entry != 0) watchdog->Deregister(spec_entry);
      if (out.status.ok()) {
        // Speculative winner: cancel the straggling primary so the
        // pool worker unblocks. If the primary already finished, the
        // flags are set but never observed — harmless.
        primary_ctl->loser_killed.store(true, std::memory_order_relaxed);
        primary_ctl->cancel.Cancel();
      }
      {
        MutexLock inner(race->mu);
        race->spec_outcome = std::move(out);
        race->spec_done = true;
      }
      race->cv.NotifyAll();
      watchdog->OnSpeculativeFinished();
    });
  }

  /// Kill closure for the watchdog: flags the copy as deadline-killed,
  /// cancels it, and drops a trace instant at the kill decision.
  std::function<void()> MakeKillClosure(
      const std::shared_ptr<CopyControl>& ctl, std::string job_name,
      TaskKind kind, size_t task, size_t attempt, bool speculative,
      uint32_t lane) const {
    const double deadline = options_.task_deadline_seconds;
    return [ctl, job_name = std::move(job_name), kind, task, attempt,
            speculative, lane, deadline] {
      ctl->deadline_killed.store(true, std::memory_order_relaxed);
      ctl->cancel.Cancel();
      Tracer& tracer = Tracer::Global();
      if (tracer.enabled()) {
        tracer.RecordInstant(
            StringPrintf("deadline-kill %s task %zu attempt %zu%s",
                         TaskKindName(kind), task, attempt,
                         speculative ? " (speculative)" : ""),
            StringPrintf("{\"job\": \"%s\", \"deadline_seconds\": %.3f}",
                         JsonEscape(job_name).c_str(), deadline),
            lane);
      }
    };
  }

  static void ClassifyCopy(AttemptAccounting& acct, const CopyOutcome& out,
                           const CopyControl& ctl) {
    if (!out.cancelled) {
      if (!out.status.ok()) {
        acct.failures.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    acct.killed.fetch_add(1, std::memory_order_relaxed);
    if (ctl.deadline_killed.load(std::memory_order_relaxed)) {
      acct.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Failure status of a resolved attempt whose copies all failed,
  /// converting engine kills into kDeadlineExceeded (the retryable
  /// "too slow" failure class).
  Status FailureStatusFor(const CopyOutcome& primary,
                          const CopyControl& ctl) const {
    if (primary.cancelled &&
        ctl.deadline_killed.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded(
          StringPrintf("attempt exceeded the %.3fs task deadline and was "
                       "killed by the watchdog",
                       options_.task_deadline_seconds));
    }
    return primary.status;
  }

  static void StampAccounting(JobMetrics& metrics,
                              const AttemptAccounting& acct, bool succeeded) {
    metrics.task_attempts = acct.attempts.load(std::memory_order_relaxed);
    metrics.task_failures = acct.failures.load(std::memory_order_relaxed);
    metrics.retried_tasks = acct.retried.load(std::memory_order_relaxed);
    metrics.speculative_attempts =
        acct.speculative.load(std::memory_order_relaxed);
    metrics.killed_attempts = acct.killed.load(std::memory_order_relaxed);
    metrics.deadline_exceeded =
        acct.deadline_exceeded.load(std::memory_order_relaxed);
    metrics.succeeded = succeeded;
  }

  /// Failure epilogue: stamps the accounting, records the (failed) job
  /// metrics, and passes the status through. Framework counters are NOT
  /// merged — a failed job has no observable side effects, so a
  /// pipeline-level re-run starts from a clean slate (exactly-once).
  Status RecordFailure(JobMetrics& metrics, const AttemptAccounting& acct,
                       const Stopwatch& total_watch, Status status) {
    StampAccounting(metrics, acct, /*succeeded=*/false);
    metrics.total_seconds = total_watch.ElapsedSeconds();
    if (options_.metrics != nullptr) options_.metrics->Record(metrics);
    return status;
  }

  /// Success epilogue: stamps the accounting, snapshots the job's
  /// merged user counters into its JobMetrics row, and commits them to
  /// the cross-job sink in one merge.
  void FinishSucceeded(JobMetrics& metrics, const AttemptAccounting& acct,
                       const Stopwatch& total_watch, Counters& job_counters) {
    StampAccounting(metrics, acct, /*succeeded=*/true);
    metrics.total_seconds = total_watch.ElapsedSeconds();
    metrics.counters = job_counters.Snapshot();
    if (options_.metrics != nullptr) options_.metrics->Record(metrics);
    if (options_.counters != nullptr) options_.counters->Merge(job_counters);
  }

  template <typename Record, typename K, typename V>
  class VectorEmitter : public Emitter<K, V> {
   public:
    void Emit(K key, V value) override {
      // Cooperative cancellation checkpoint: a wide-emit mapper that
      // never returns to the engine's record loop is still killable.
      // One relaxed load every 256 emits; null tokens never cancel.
      // The memory charge refreshes at the same cadence — bounded
      // staleness without per-emit tracker traffic.
      if (((++emit_calls_) & 255u) == 0) {
        cancel_.ThrowIfCancelled();
        mem_.Set(static_cast<int64_t>(pairs_.capacity() *
                                      sizeof(std::pair<K, V>)));
      }
      bytes_ += SerializedSize(key) + SerializedSize(value);
      pairs_.emplace_back(std::move(key), std::move(value));
    }
    Counters& counters() override { return counters_; }

    void set_cancel(CancellationToken token) { cancel_ = std::move(token); }

    /// Size hint from the engine (records-per-split heuristic): most of
    /// the paper's mappers emit at least one pair per record, so
    /// reserving the split size up front removes the early reallocation
    /// churn of wide-emit jobs. The capacity is transient — commit moves
    /// the pairs into tight shuffle buckets.
    void Reserve(size_t expected_pairs) {
      pairs_.reserve(expected_pairs);
      mem_.Set(static_cast<int64_t>(pairs_.capacity() *
                                    sizeof(std::pair<K, V>)));
    }

    std::vector<std::pair<K, V>> pairs_;
    Counters counters_;
    uint64_t bytes_ = 0;
    /// Scoped charge shadowing pairs_'s top-level capacity; moves with
    /// the emitter, released on destruction (or explicitly after the
    /// pairs are handed to the shuffle).
    resource::ScopedBytes mem_{resource::MemScope::kEmitter};

   private:
    CancellationToken cancel_{};
    uint64_t emit_calls_ = 0;
  };

  /// Runs the map (+optional combine) tasks and hands each split's
  /// committed output to `commit` — still inside the worker, so
  /// per-split shuffle work (partitioning, run sorting) overlaps with
  /// other map tasks. `commit` is engine code, not a task attempt: it
  /// runs at most once per split, only after the split's attempts
  /// succeeded, and a non-OK return fails the job deterministically.
  template <typename Record, typename K, typename V>
  Status MapPhase(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory,
      JobMetrics* metrics, Counters* job_counters, JobExecState& exec,
      const std::function<Status(size_t split,
                                 std::vector<std::pair<K, V>> pairs)>&
          commit) {
    const size_t n = input.size();
    const size_t per_split = SplitSize(std::max<size_t>(1, n));
    const size_t num_splits = n == 0 ? 0 : (n + per_split - 1) / per_split;
    metrics->num_splits = num_splits;
    TraceSpan map_span(
        "map-phase",
        Tracer::Global().enabled()
            ? StringPrintf("{\"num_splits\": %zu}", num_splits)
            : std::string());

    std::vector<VectorEmitter<Record, K, V>> emitters(num_splits);
    std::atomic<uint64_t> map_output_records{0};
    FailureSlot failure(&exec.job_cancel);
    // Speculative copies race on the SAME task state; combine attempts
    // must then work on an isolated copy of the map output instead of
    // sorting it in place (retries alone never overlap, so the copy is
    // skipped when speculation is off).
    const bool isolate_combine = options_.speculative_execution;

    // Shared attempt computation: the inline body and the worker-
    // process child run exactly this, so the two backends cannot
    // diverge. A worker child passes a default (never-cancelling)
    // token — workers are stopped with signals, not cooperatively.
    auto compute_split = [&](size_t s, const CancellationToken& cancel) {
      const size_t begin = s * per_split;
      const size_t end = std::min(n, begin + per_split);
      std::span<const Record> split = input.subspan(begin, end - begin);
      // Fresh emitter per attempt copy: records, counters, and byte
      // accounting of a failed attempt are discarded wholesale; only
      // the winning copy's output is committed to the split slot.
      VectorEmitter<Record, K, V> out;
      out.set_cancel(cancel);
      out.Reserve(split.size());
      std::unique_ptr<Mapper<Record, K, V>> mapper = mapper_factory();
      mapper->Setup(s, split, out);
      size_t record_index = 0;
      for (const Record& record : split) {
        // Cooperative cancellation checkpoint for mappers that
        // emit rarely (the emitter checkpoint never fires).
        if ((record_index++ & 63u) == 0) cancel.ThrowIfCancelled();
        mapper->Map(record, out);
      }
      mapper->Cleanup(out);
      if (resource::MemoryTracker::Global().enabled()) {
        // Deterministic task-footprint gauge: serialized emit bytes,
        // identical for every attempt copy of this task (and for a
        // worker child, whose tracker enabled flag is inherited at
        // fork). It rides the attempt-local counters, so failed
        // attempts drop it with the attempt and the job-level merge
        // (gauge = max) is exactly-once under retry and speculation.
        out.counters_.SetGauge("mem.task.peak_bytes",
                               static_cast<double>(out.bytes_));
      }
      return out;
    };

    // Remote form of the map phase, when K/V can cross the process
    // boundary: the child computes the split and serializes the
    // emitter's observable state; the driver decodes it and commits
    // through the same CAS slot the inline body uses. Jobs whose types
    // are not wire-serializable leave the fns null and run inline on
    // every backend.
    PhaseTaskFn map_run;
    PhaseCommitFn map_commit;
    if constexpr (wire::kIsWireSerializable<std::pair<K, V>>) {
      map_run = [&](uint64_t s) -> Result<std::string> {
        VectorEmitter<Record, K, V> out =
            compute_split(static_cast<size_t>(s), CancellationToken{});
        wire::WireWriter w;
        w.PutU64(out.bytes_);
        wire::EncodeMetricBag(out.counters_.Snapshot(), w);
        w.Put(out.pairs_);
        return w.Take();
      };
      map_commit = [&emitters](const TaskContext& ctx, uint64_t s,
                               std::string payload) -> Status {
        wire::WireReader r(payload, "map task payload");
        VectorEmitter<Record, K, V> out;
        out.bytes_ = r.GetU64();
        auto bag = wire::DecodeMetricBag(r);
        P3C_RETURN_NOT_OK(bag.status());
        r.Get(&out.pairs_);
        P3C_RETURN_NOT_OK(r.Finish());
        out.counters_.MergeBag(*bag);
        out.mem_.Set(static_cast<int64_t>(out.pairs_.capacity() *
                                          sizeof(std::pair<K, V>)));
        ctx.Commit([&] { emitters[s] = std::move(out); });
        return Status::OK();
      };
    }
    ScopedExecutorPhase map_phase(executor_.get(), job_name, TaskKind::kMap,
                                  num_splits, std::move(map_run),
                                  std::move(map_commit));

    pool_.ParallelForCapped(num_splits, ExecWidth(), /*grain=*/0,
                            [&](size_t s) {
      if (failure.has_failed()) return;
      Status st = ExecuteTask(
          job_name, TaskKind::kMap, s, exec, [&](const TaskContext& ctx) {
            VectorEmitter<Record, K, V> out = compute_split(s, ctx.cancel);
            ctx.Commit([&] { emitters[s] = std::move(out); });
            return Status::OK();
          });
      if (st.ok() && combiner_factory != nullptr) {
        // The combiner is its own attempt (Hadoop re-runs it with the
        // map attempt; isolating it here means a crashing combiner
        // retries against the intact, already-committed map output).
        // Under speculation the input is snapshotted ONCE, before the
        // attempt race starts: a racing copy must never read the
        // emitter the winning copy's commit mutates.
        std::vector<std::pair<K, V>> combine_snapshot;
        if (isolate_combine) combine_snapshot = emitters[s].pairs_;
        const std::vector<std::pair<K, V>>& combine_input =
            isolate_combine ? combine_snapshot : emitters[s].pairs_;
        st = ExecuteTask(job_name, TaskKind::kCombine, s, exec,
                         [&](const TaskContext& ctx) {
                           return CombineAttempt(combiner_factory,
                                                 combine_input, emitters[s],
                                                 ctx, isolate_combine);
                         });
      }
      if (st.ok()) {
        map_output_records.fetch_add(emitters[s].pairs_.size(),
                                     std::memory_order_relaxed);
        if (exec.heartbeat != nullptr) {
          const size_t split_records =
              std::min(n, (s + 1) * per_split) - s * per_split;
          exec.heartbeat->records.fetch_add(split_records,
                                            std::memory_order_relaxed);
        }
        st = commit(s, std::move(emitters[s].pairs_));
        // The pairs now live in the shuffle buffers (charged there);
        // drop the emitter's charge instead of holding it until the
        // emitters vector dies at the end of the phase.
        emitters[s].mem_.Set(0);
      }
      if (!st.ok()) failure.Set(std::move(st));
    });
    if (failure.has_failed()) return failure.Take();

    for (auto& e : emitters) {
      metrics->shuffle_bytes += e.bytes_;
      job_counters->Merge(e.counters_);
    }
    metrics->map_output_records =
        map_output_records.load(std::memory_order_relaxed);
    return Status::OK();
  }

  /// One combine attempt over one map task's committed output: groups by
  /// key and collapses each group with a fresh combiner instance. The
  /// emitter is only mutated inside TaskContext::Commit, after the
  /// combiner has processed every group, so a failed (or losing
  /// speculative) attempt leaves the map output intact. With
  /// speculation off the in-place key sort is safe (attempts of one
  /// task never overlap) and idempotent across retries; with
  /// speculation on, racing copies each sort a private copy of the
  /// pairs (`isolate`). The byte accounting is redone so shuffle_bytes
  /// reflects the post-combine volume. This is the one shuffle path
  /// that still copies values: the emitter's pairs are not
  /// value-contiguous, so a span over them does not exist.
  template <typename Record, typename K, typename V>
  static Status CombineAttempt(
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory,
      const std::vector<std::pair<K, V>>& input,
      VectorEmitter<Record, K, V>& out, const TaskContext& ctx,
      bool isolate) {
    // Isolated (speculation) mode: `input` is an immutable per-task
    // snapshot shared by the racing copies; each copy sorts a private
    // copy of it. In-place mode: `input` IS out.pairs_, and the sort
    // mutates it directly (idempotent across non-overlapping retries).
    std::vector<std::pair<K, V>> local;
    if (isolate) local = input;
    auto& pairs = isolate ? local : out.pairs_;
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::unique_ptr<Combiner<K, V>> combiner = combiner_factory();
    std::vector<std::pair<K, V>> combined;
    std::vector<V> values;
    uint64_t bytes = 0;
    size_t group_index = 0;
    for (size_t i = 0; i < pairs.size();) {
      if ((group_index++ & 63u) == 0) ctx.cancel.ThrowIfCancelled();
      size_t j = i + 1;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      values.clear();
      values.reserve(j - i);
      for (size_t v = i; v < j; ++v) {
        values.push_back(pairs[v].second);
      }
      V result =
          combiner->Combine(pairs[i].first, std::span<const V>(values));
      bytes += SerializedSize(pairs[i].first) + SerializedSize(result);
      combined.emplace_back(pairs[i].first, std::move(result));
      i = j;
    }
    ctx.Commit([&] {
      out.pairs_ = std::move(combined);
      out.bytes_ = bytes;
      out.mem_.Set(static_cast<int64_t>(out.pairs_.capacity() *
                                        sizeof(std::pair<K, V>)));
    });
    return Status::OK();
  }

  RunnerOptions options_;
  ThreadPool pool_;
  /// Deadline/speculation monitor; its thread starts lazily on the
  /// first registered attempt, so runners with straggler control
  /// disabled never create it. Destroyed (and joined) after the
  /// executor, while the pool and options are still alive.
  TaskWatchdog watchdog_;
  /// Pluggable task-execution backend (executor.h); every attempt copy
  /// funnels through executor_->RunCopy. Declared last so a process
  /// backend's worker pool is torn down before anything it observes.
  std::unique_ptr<TaskExecutor> executor_;
  /// Aliases executor_ when the process backend is active (worker
  /// metrics access); null on the in-process backend.
  WorkerPoolExecutor* worker_executor_ = nullptr;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_RUNNER_H_
