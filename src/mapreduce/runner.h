#ifndef P3C_MAPREDUCE_RUNNER_H_
#define P3C_MAPREDUCE_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/common/threadpool.h"
#include "src/mapreduce/counters.h"
#include "src/mapreduce/fault.h"
#include "src/mapreduce/job.h"
#include "src/mapreduce/metrics.h"

namespace p3c::mr {

/// Execution knobs for the local MapReduce engine.
struct RunnerOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t num_threads = 0;
  /// Records per input split; 0 derives a split size that yields about
  /// four splits per worker ("we do not artificially split the input
  /// files" — splits grow with the data, §7.5.2).
  size_t records_per_split = 0;
  /// Number of reduce tasks per job (the paper's jobs mostly use a single
  /// reducer; the engine still exercises the partition/merge machinery).
  size_t num_reducers = 1;
  /// Maximum attempts per task before the job fails — Hadoop's
  /// `mapreduce.{map,reduce}.maxattempts`, default 4. Each map, combine,
  /// and reduce task runs as up to this many attempts; a failed attempt
  /// (thrown exception or non-OK Status) is discarded wholesale and the
  /// task is re-run from its immutable input.
  size_t max_attempts = 4;
  /// Deterministic exponential backoff between attempts of one task:
  /// retry r sleeps min(retry_backoff_seconds * 2^(r-1),
  /// retry_backoff_max_seconds). 0 disables sleeping (tests).
  double retry_backoff_seconds = 0.0;
  double retry_backoff_max_seconds = 0.05;
  /// Optional fault-injection hook consulted at the start of every task
  /// attempt (see fault.h); the test substrate for the retry machinery.
  FaultInjector* fault_injector = nullptr;
  /// Optional sink for per-job execution metrics.
  MetricsRegistry* metrics = nullptr;
  /// Optional sink for merged framework counters across jobs.
  Counters* counters = nullptr;
};

/// In-process, multi-threaded MapReduce engine.
///
/// Preserves the framework semantics the paper's algorithm design relies
/// on: record-parallel mappers over splits with Setup/Map/Cleanup
/// lifecycle, a sort-based shuffle that groups equal keys, key-grouped
/// reducers, per-phase barriers, counters, and shuffle-volume accounting.
/// Output order is deterministic: reducers observe keys in sorted order
/// and outputs are concatenated in key order, so runs are reproducible
/// regardless of thread scheduling.
///
/// Fault tolerance mirrors Hadoop's task-attempt model: every map,
/// combine, and reduce task executes as a sequence of attempts, each of
/// which either commits its output atomically or is discarded without a
/// trace — counters, shuffle bytes, and emitted records of failed
/// attempts never reach the job result, so a job that succeeds after
/// retries is byte-identical to a fault-free run. A task that exhausts
/// `RunnerOptions::max_attempts` fails the job with a Status naming the
/// job, task kind, task index, and attempt count; JobMetrics records the
/// attempt/failure/retry totals either way.
///
/// Retryability contract: mapper/reducer/combiner factories may be
/// invoked several times per task (once per attempt) and task input is
/// treated as immutable — shuffle values are copied, not moved, into
/// reducer calls, so `V` must be copyable.
///
/// Substitution note (DESIGN.md §2): this replaces the paper's Hadoop
/// cluster; the job decompositions in src/mr are expressed against this
/// API exactly as §5 describes them against Hadoop.
class LocalRunner {
 public:
  explicit LocalRunner(RunnerOptions options = {})
      : options_(std::move(options)), pool_(options_.num_threads) {}

  LocalRunner(const LocalRunner&) = delete;
  LocalRunner& operator=(const LocalRunner&) = delete;

  const RunnerOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }

  /// Runs a full map-shuffle-reduce job and returns the concatenated
  /// reducer outputs (in key order), or the failure of the first task
  /// that exhausted its attempts. `K` must be strict-weak orderable.
  ///
  /// The factories are invoked once per task *attempt* from worker
  /// threads and must be thread-safe; the produced mapper/reducer
  /// instances are used by a single thread only.
  template <typename Record, typename K, typename V, typename Out>
  Result<std::vector<Out>> Run(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Reducer<K, V, Out>>()>&
          reducer_factory) {
    return RunWithCombiner<Record, K, V, Out>(job_name, input, mapper_factory,
                                              reducer_factory, nullptr);
  }

  /// Run() plus a per-mapper combiner: each map task's output is grouped
  /// and collapsed by the combiner before entering the shuffle, so the
  /// shuffle volume (JobMetrics::shuffle_bytes) reflects the combined
  /// records. `combiner_factory` may be null (no combining). The
  /// combiner runs as its own retryable attempt: a crashing combiner is
  /// retried against the intact map output.
  template <typename Record, typename K, typename V, typename Out>
  Result<std::vector<Out>> RunWithCombiner(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Reducer<K, V, Out>>()>&
          reducer_factory,
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory) {
    Stopwatch total_watch;
    JobMetrics metrics;
    metrics.job_name = job_name;
    metrics.input_records = input.size();
    metrics.num_reducers = std::max<size_t>(1, options_.num_reducers);
    AttemptAccounting acct;
    Counters job_counters;

    // ---- Map phase -----------------------------------------------------
    Stopwatch map_watch;
    Result<std::vector<std::pair<K, V>>> map_result = MapPhase<Record, K, V>(
        job_name, input, mapper_factory, combiner_factory, &metrics,
        &job_counters, acct);
    metrics.map_seconds = map_watch.ElapsedSeconds();
    if (!map_result.ok()) {
      return RecordFailure(metrics, acct, total_watch, map_result.status());
    }
    std::vector<std::pair<K, V>> pairs = std::move(map_result).value();

    // ---- Shuffle: sort-based grouping ---------------------------------
    Stopwatch shuffle_watch;
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    // Group boundaries [begin, end) of equal keys.
    std::vector<std::pair<size_t, size_t>> groups;
    for (size_t i = 0; i < pairs.size();) {
      size_t j = i + 1;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      groups.emplace_back(i, j);
      i = j;
    }
    metrics.shuffle_seconds = shuffle_watch.ElapsedSeconds();

    // ---- Reduce phase --------------------------------------------------
    Stopwatch reduce_watch;
    const size_t num_reduce_tasks =
        std::min(metrics.num_reducers, std::max<size_t>(1, groups.size()));
    std::vector<std::vector<Out>> task_outputs(num_reduce_tasks);
    FailureSlot failure;
    pool_.ParallelFor(num_reduce_tasks, [&](size_t task) {
      if (failure.has_failed()) return;
      // Contiguous key ranges per reduce task keep output deterministic.
      const size_t begin = groups.size() * task / num_reduce_tasks;
      const size_t end = groups.size() * (task + 1) / num_reduce_tasks;
      Status st =
          ExecuteTask(job_name, TaskKind::kReduce, task, acct, [&](size_t) {
            std::unique_ptr<Reducer<K, V, Out>> reducer = reducer_factory();
            // Fresh output per attempt; shuffle values are copied so a
            // failed attempt leaves the shuffled input intact for retry.
            std::vector<Out> attempt_out;
            std::vector<V> values;
            for (size_t g = begin; g < end; ++g) {
              values.clear();
              values.reserve(groups[g].second - groups[g].first);
              for (size_t i = groups[g].first; i < groups[g].second; ++i) {
                values.push_back(pairs[i].second);
              }
              reducer->Reduce(pairs[groups[g].first].first, values,
                              attempt_out);
            }
            task_outputs[task] = std::move(attempt_out);
            return Status::OK();
          });
      if (!st.ok()) failure.Set(std::move(st));
    });
    if (failure.has_failed()) {
      metrics.reduce_seconds = reduce_watch.ElapsedSeconds();
      return RecordFailure(metrics, acct, total_watch, failure.Take());
    }
    std::vector<Out> output;
    for (auto& part : task_outputs) {
      output.insert(output.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    metrics.reduce_seconds = reduce_watch.ElapsedSeconds();
    metrics.output_records = output.size();
    FinishSucceeded(metrics, acct, total_watch, job_counters);
    return output;
  }

  /// Runs a map-only job (the paper's OD job, §5.5): the mappers'
  /// emissions are the job output, sorted by key for determinism.
  template <typename Record, typename K, typename V>
  Result<std::vector<std::pair<K, V>>> RunMapOnly(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory) {
    Stopwatch total_watch;
    JobMetrics metrics;
    metrics.job_name = job_name;
    metrics.input_records = input.size();
    metrics.num_reducers = 0;
    AttemptAccounting acct;
    Counters job_counters;

    Stopwatch map_watch;
    Result<std::vector<std::pair<K, V>>> map_result = MapPhase<Record, K, V>(
        job_name, input, mapper_factory, nullptr, &metrics, &job_counters,
        acct);
    metrics.map_seconds = map_watch.ElapsedSeconds();
    if (!map_result.ok()) {
      return RecordFailure(metrics, acct, total_watch, map_result.status());
    }
    std::vector<std::pair<K, V>> pairs = std::move(map_result).value();

    Stopwatch shuffle_watch;
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    metrics.shuffle_seconds = shuffle_watch.ElapsedSeconds();

    metrics.output_records = pairs.size();
    FinishSucceeded(metrics, acct, total_watch, job_counters);
    return pairs;
  }

  /// Number of splits the engine would cut `n` records into.
  size_t NumSplits(size_t n) const {
    if (n == 0) return 0;
    const size_t per_split = SplitSize(n);
    return (n + per_split - 1) / per_split;
  }

 private:
  /// Attempt/failure/retry totals of one job, accumulated lock-free from
  /// worker threads and copied into JobMetrics when the job finishes.
  struct AttemptAccounting {
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> retried{0};
  };

  /// First-error-wins slot shared by the tasks of one phase: the first
  /// task to exhaust its attempts parks its Status here and later tasks
  /// short-circuit via has_failed().
  class FailureSlot {
   public:
    void Set(Status status) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!failed_.load(std::memory_order_relaxed)) {
        status_ = std::move(status);
        failed_.store(true, std::memory_order_release);
      }
    }
    bool has_failed() const {
      return failed_.load(std::memory_order_acquire);
    }
    Status Take() {
      std::lock_guard<std::mutex> lock(mu_);
      return status_;
    }

   private:
    std::mutex mu_;
    Status status_;
    std::atomic<bool> failed_{false};
  };

  size_t SplitSize(size_t n) const {
    if (options_.records_per_split > 0) return options_.records_per_split;
    const size_t target_tasks = pool_.num_threads() * 4;
    return std::max<size_t>(1, (n + target_tasks - 1) / target_tasks);
  }

  /// Deterministic exponential backoff before retry number `retry`
  /// (1-based): min(base * 2^(retry-1), max). No jitter — retry timing
  /// must not introduce nondeterminism into tests.
  void SleepBackoff(size_t retry) const {
    double seconds = options_.retry_backoff_seconds;
    if (seconds <= 0.0) return;
    for (size_t r = 1; r < retry; ++r) seconds *= 2.0;
    seconds = std::min(seconds, options_.retry_backoff_max_seconds);
    if (seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }

  /// Runs one task as up to `max_attempts` attempts of `body`. Each
  /// attempt first consults the fault injector, then runs the body;
  /// exceptions from either are converted to Status so a crashing task
  /// is indistinguishable from a cleanly failing one. The body must
  /// only commit side effects on its success path (attempt isolation is
  /// the body's contract; the loop supplies the retry policy).
  Status ExecuteTask(const std::string& job_name, TaskKind kind, size_t task,
                     AttemptAccounting& acct,
                     const std::function<Status(size_t attempt)>& body) {
    const size_t max_attempts = std::max<size_t>(1, options_.max_attempts);
    Status last;
    for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) SleepBackoff(attempt);
      acct.attempts.fetch_add(1, std::memory_order_relaxed);
      Status st;
      try {
        if (options_.fault_injector != nullptr) {
          st = options_.fault_injector->OnAttemptStart(
              TaskAttempt{job_name, kind, task, attempt});
        }
        if (st.ok()) st = body(attempt);
      } catch (const std::exception& e) {
        st = Status::Internal(
            StringPrintf("uncaught exception: %s", e.what()));
      } catch (...) {
        st = Status::Internal("uncaught non-standard exception");
      }
      if (st.ok()) return st;
      acct.failures.fetch_add(1, std::memory_order_relaxed);
      if (attempt == 0 && max_attempts > 1) {
        acct.retried.fetch_add(1, std::memory_order_relaxed);
      }
      last = std::move(st);
    }
    return Status(
        last.code(),
        StringPrintf("job '%s': %s task %zu failed after %zu attempt(s): %s",
                     job_name.c_str(), TaskKindName(kind), task, max_attempts,
                     last.message().c_str()));
  }

  static void StampAccounting(JobMetrics& metrics,
                              const AttemptAccounting& acct, bool succeeded) {
    metrics.task_attempts = acct.attempts.load(std::memory_order_relaxed);
    metrics.task_failures = acct.failures.load(std::memory_order_relaxed);
    metrics.retried_tasks = acct.retried.load(std::memory_order_relaxed);
    metrics.succeeded = succeeded;
  }

  /// Failure epilogue: stamps the accounting, records the (failed) job
  /// metrics, and passes the status through. Framework counters are NOT
  /// merged — a failed job has no observable side effects, so a
  /// pipeline-level re-run starts from a clean slate (exactly-once).
  Status RecordFailure(JobMetrics& metrics, const AttemptAccounting& acct,
                       const Stopwatch& total_watch, Status status) {
    StampAccounting(metrics, acct, /*succeeded=*/false);
    metrics.total_seconds = total_watch.ElapsedSeconds();
    if (options_.metrics != nullptr) options_.metrics->Record(metrics);
    return status;
  }

  /// Success epilogue: stamps the accounting and commits the job's
  /// counters to the cross-job sink in one merge.
  void FinishSucceeded(JobMetrics& metrics, const AttemptAccounting& acct,
                       const Stopwatch& total_watch, Counters& job_counters) {
    StampAccounting(metrics, acct, /*succeeded=*/true);
    metrics.total_seconds = total_watch.ElapsedSeconds();
    if (options_.metrics != nullptr) options_.metrics->Record(metrics);
    if (options_.counters != nullptr) options_.counters->Merge(job_counters);
  }

  template <typename Record, typename K, typename V>
  class VectorEmitter : public Emitter<K, V> {
   public:
    void Emit(K key, V value) override {
      bytes_ += SerializedSize(key) + SerializedSize(value);
      pairs_.emplace_back(std::move(key), std::move(value));
    }
    Counters& counters() override { return counters_; }

    std::vector<std::pair<K, V>> pairs_;
    Counters counters_;
    uint64_t bytes_ = 0;
  };

  template <typename Record, typename K, typename V>
  Result<std::vector<std::pair<K, V>>> MapPhase(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory,
      JobMetrics* metrics, Counters* job_counters, AttemptAccounting& acct) {
    const size_t n = input.size();
    const size_t per_split = SplitSize(std::max<size_t>(1, n));
    const size_t num_splits = n == 0 ? 0 : (n + per_split - 1) / per_split;
    metrics->num_splits = num_splits;

    std::vector<VectorEmitter<Record, K, V>> emitters(num_splits);
    FailureSlot failure;
    pool_.ParallelFor(num_splits, [&](size_t s) {
      if (failure.has_failed()) return;
      const size_t begin = s * per_split;
      const size_t end = std::min(n, begin + per_split);
      std::span<const Record> split = input.subspan(begin, end - begin);
      Status st =
          ExecuteTask(job_name, TaskKind::kMap, s, acct, [&](size_t) {
            // Fresh emitter per attempt: records, counters, and byte
            // accounting of a failed attempt are discarded wholesale;
            // only the winning attempt's output is committed to the
            // split slot below.
            VectorEmitter<Record, K, V> out;
            std::unique_ptr<Mapper<Record, K, V>> mapper = mapper_factory();
            mapper->Setup(s, split, out);
            for (const Record& record : split) mapper->Map(record, out);
            mapper->Cleanup(out);
            emitters[s] = std::move(out);
            return Status::OK();
          });
      if (st.ok() && combiner_factory != nullptr) {
        // The combiner is its own attempt (Hadoop re-runs it with the
        // map attempt; isolating it here means a crashing combiner
        // retries against the intact, already-committed map output).
        st = ExecuteTask(job_name, TaskKind::kCombine, s, acct, [&](size_t) {
          return CombineAttempt(combiner_factory, emitters[s]);
        });
      }
      if (!st.ok()) failure.Set(std::move(st));
    });
    if (failure.has_failed()) return failure.Take();

    size_t total_pairs = 0;
    for (const auto& e : emitters) total_pairs += e.pairs_.size();
    std::vector<std::pair<K, V>> pairs;
    pairs.reserve(total_pairs);
    for (auto& e : emitters) {
      metrics->shuffle_bytes += e.bytes_;
      pairs.insert(pairs.end(), std::make_move_iterator(e.pairs_.begin()),
                   std::make_move_iterator(e.pairs_.end()));
      job_counters->Merge(e.counters_);
    }
    metrics->map_output_records = total_pairs;
    return pairs;
  }

  /// One combine attempt over one map task's committed output: groups by
  /// key and collapses each group with a fresh combiner instance. The
  /// emitter is only mutated after the combiner has processed every
  /// group (values are copied into the combiner, the in-place key sort
  /// is idempotent), so a failed attempt leaves the map output intact.
  /// The byte accounting is redone so shuffle_bytes reflects the
  /// post-combine volume.
  template <typename Record, typename K, typename V>
  static Status CombineAttempt(
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory,
      VectorEmitter<Record, K, V>& out) {
    auto& pairs = out.pairs_;
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::unique_ptr<Combiner<K, V>> combiner = combiner_factory();
    std::vector<std::pair<K, V>> combined;
    std::vector<V> values;
    uint64_t bytes = 0;
    for (size_t i = 0; i < pairs.size();) {
      size_t j = i + 1;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      values.clear();
      values.reserve(j - i);
      for (size_t v = i; v < j; ++v) {
        values.push_back(pairs[v].second);
      }
      V result = combiner->Combine(pairs[i].first, values);
      bytes += SerializedSize(pairs[i].first) + SerializedSize(result);
      combined.emplace_back(pairs[i].first, std::move(result));
      i = j;
    }
    pairs = std::move(combined);
    out.bytes_ = bytes;
    return Status::OK();
  }

  RunnerOptions options_;
  ThreadPool pool_;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_RUNNER_H_
