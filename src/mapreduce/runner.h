#ifndef P3C_MAPREDUCE_RUNNER_H_
#define P3C_MAPREDUCE_RUNNER_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/common/threadpool.h"
#include "src/mapreduce/counters.h"
#include "src/mapreduce/job.h"
#include "src/mapreduce/metrics.h"

namespace p3c::mr {

/// Execution knobs for the local MapReduce engine.
struct RunnerOptions {
  /// Worker threads; 0 means hardware concurrency.
  size_t num_threads = 0;
  /// Records per input split; 0 derives a split size that yields about
  /// four splits per worker ("we do not artificially split the input
  /// files" — splits grow with the data, §7.5.2).
  size_t records_per_split = 0;
  /// Number of reduce tasks per job (the paper's jobs mostly use a single
  /// reducer; the engine still exercises the partition/merge machinery).
  size_t num_reducers = 1;
  /// Optional sink for per-job execution metrics.
  MetricsRegistry* metrics = nullptr;
  /// Optional sink for merged framework counters across jobs.
  Counters* counters = nullptr;
};

/// In-process, multi-threaded MapReduce engine.
///
/// Preserves the framework semantics the paper's algorithm design relies
/// on: record-parallel mappers over splits with Setup/Map/Cleanup
/// lifecycle, a sort-based shuffle that groups equal keys, key-grouped
/// reducers, per-phase barriers, counters, and shuffle-volume accounting.
/// Output order is deterministic: reducers observe keys in sorted order
/// and outputs are concatenated in key order, so runs are reproducible
/// regardless of thread scheduling.
///
/// Substitution note (DESIGN.md §2): this replaces the paper's Hadoop
/// cluster; the job decompositions in src/mr are expressed against this
/// API exactly as §5 describes them against Hadoop.
class LocalRunner {
 public:
  explicit LocalRunner(RunnerOptions options = {})
      : options_(options), pool_(options.num_threads) {}

  LocalRunner(const LocalRunner&) = delete;
  LocalRunner& operator=(const LocalRunner&) = delete;

  const RunnerOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }

  /// Runs a full map-shuffle-reduce job and returns the concatenated
  /// reducer outputs (in key order). `K` must be strict-weak orderable.
  ///
  /// The factories are invoked once per task from worker threads and must
  /// be thread-safe; the produced mapper/reducer instances are used by a
  /// single thread only.
  template <typename Record, typename K, typename V, typename Out>
  std::vector<Out> Run(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Reducer<K, V, Out>>()>&
          reducer_factory) {
    return RunWithCombiner<Record, K, V, Out>(job_name, input, mapper_factory,
                                              reducer_factory, nullptr);
  }

  /// Run() plus a per-mapper combiner: each map task's output is grouped
  /// and collapsed by the combiner before entering the shuffle, so the
  /// shuffle volume (JobMetrics::shuffle_bytes) reflects the combined
  /// records. `combiner_factory` may be null (no combining).
  template <typename Record, typename K, typename V, typename Out>
  std::vector<Out> RunWithCombiner(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Reducer<K, V, Out>>()>&
          reducer_factory,
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory) {
    Stopwatch total_watch;
    JobMetrics metrics;
    metrics.job_name = job_name;
    metrics.input_records = input.size();
    metrics.num_reducers = std::max<size_t>(1, options_.num_reducers);

    // ---- Map phase -----------------------------------------------------
    Stopwatch map_watch;
    std::vector<std::pair<K, V>> pairs = MapPhase<Record, K, V>(
        input, mapper_factory, combiner_factory, &metrics);
    metrics.map_seconds = map_watch.ElapsedSeconds();

    // ---- Shuffle: sort-based grouping ---------------------------------
    Stopwatch shuffle_watch;
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    // Group boundaries [begin, end) of equal keys.
    std::vector<std::pair<size_t, size_t>> groups;
    for (size_t i = 0; i < pairs.size();) {
      size_t j = i + 1;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      groups.emplace_back(i, j);
      i = j;
    }
    metrics.shuffle_seconds = shuffle_watch.ElapsedSeconds();

    // ---- Reduce phase --------------------------------------------------
    Stopwatch reduce_watch;
    const size_t num_reduce_tasks =
        std::min(metrics.num_reducers, std::max<size_t>(1, groups.size()));
    std::vector<std::vector<Out>> task_outputs(num_reduce_tasks);
    std::vector<Counters> task_counters(num_reduce_tasks);
    pool_.ParallelFor(num_reduce_tasks, [&](size_t task) {
      // Contiguous key ranges per reduce task keep output deterministic.
      const size_t begin = groups.size() * task / num_reduce_tasks;
      const size_t end = groups.size() * (task + 1) / num_reduce_tasks;
      std::unique_ptr<Reducer<K, V, Out>> reducer = reducer_factory();
      std::vector<V> values;
      for (size_t g = begin; g < end; ++g) {
        values.clear();
        values.reserve(groups[g].second - groups[g].first);
        for (size_t i = groups[g].first; i < groups[g].second; ++i) {
          values.push_back(std::move(pairs[i].second));
        }
        reducer->Reduce(pairs[groups[g].first].first, values,
                        task_outputs[task]);
      }
    });
    std::vector<Out> output;
    for (auto& part : task_outputs) {
      output.insert(output.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    metrics.reduce_seconds = reduce_watch.ElapsedSeconds();
    metrics.output_records = output.size();
    metrics.total_seconds = total_watch.ElapsedSeconds();
    if (options_.metrics != nullptr) options_.metrics->Record(metrics);
    return output;
  }

  /// Runs a map-only job (the paper's OD job, §5.5): the mappers'
  /// emissions are the job output, sorted by key for determinism.
  template <typename Record, typename K, typename V>
  std::vector<std::pair<K, V>> RunMapOnly(
      const std::string& job_name, std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory) {
    Stopwatch total_watch;
    JobMetrics metrics;
    metrics.job_name = job_name;
    metrics.input_records = input.size();
    metrics.num_reducers = 0;

    Stopwatch map_watch;
    std::vector<std::pair<K, V>> pairs =
        MapPhase<Record, K, V>(input, mapper_factory, nullptr, &metrics);
    metrics.map_seconds = map_watch.ElapsedSeconds();

    Stopwatch shuffle_watch;
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    metrics.shuffle_seconds = shuffle_watch.ElapsedSeconds();

    metrics.output_records = pairs.size();
    metrics.total_seconds = total_watch.ElapsedSeconds();
    if (options_.metrics != nullptr) options_.metrics->Record(metrics);
    return pairs;
  }

  /// Number of splits the engine would cut `n` records into.
  size_t NumSplits(size_t n) const {
    if (n == 0) return 0;
    const size_t per_split = SplitSize(n);
    return (n + per_split - 1) / per_split;
  }

 private:
  size_t SplitSize(size_t n) const {
    if (options_.records_per_split > 0) return options_.records_per_split;
    const size_t target_tasks = pool_.num_threads() * 4;
    return std::max<size_t>(1, (n + target_tasks - 1) / target_tasks);
  }

  template <typename Record, typename K, typename V>
  class VectorEmitter : public Emitter<K, V> {
   public:
    void Emit(K key, V value) override {
      bytes_ += SerializedSize(key) + SerializedSize(value);
      pairs_.emplace_back(std::move(key), std::move(value));
    }
    Counters& counters() override { return counters_; }

    std::vector<std::pair<K, V>> pairs_;
    Counters counters_;
    uint64_t bytes_ = 0;
  };

  template <typename Record, typename K, typename V>
  std::vector<std::pair<K, V>> MapPhase(
      std::span<const Record> input,
      const std::function<std::unique_ptr<Mapper<Record, K, V>>()>&
          mapper_factory,
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory,
      JobMetrics* metrics) {
    const size_t n = input.size();
    const size_t per_split = SplitSize(std::max<size_t>(1, n));
    const size_t num_splits = n == 0 ? 0 : (n + per_split - 1) / per_split;
    metrics->num_splits = num_splits;

    std::vector<VectorEmitter<Record, K, V>> emitters(num_splits);
    pool_.ParallelFor(num_splits, [&](size_t s) {
      const size_t begin = s * per_split;
      const size_t end = std::min(n, begin + per_split);
      std::span<const Record> split = input.subspan(begin, end - begin);
      std::unique_ptr<Mapper<Record, K, V>> mapper = mapper_factory();
      VectorEmitter<Record, K, V>& out = emitters[s];
      mapper->Setup(s, split, out);
      for (const Record& record : split) mapper->Map(record, out);
      mapper->Cleanup(out);
      if (combiner_factory != nullptr) {
        CombineLocal(combiner_factory, out);
      }
    });

    size_t total_pairs = 0;
    for (const auto& e : emitters) total_pairs += e.pairs_.size();
    std::vector<std::pair<K, V>> pairs;
    pairs.reserve(total_pairs);
    for (auto& e : emitters) {
      metrics->shuffle_bytes += e.bytes_;
      pairs.insert(pairs.end(), std::make_move_iterator(e.pairs_.begin()),
                   std::make_move_iterator(e.pairs_.end()));
      if (options_.counters != nullptr) options_.counters->Merge(e.counters_);
    }
    metrics->map_output_records = total_pairs;
    return pairs;
  }

  /// Groups one map task's output by key and collapses each group with a
  /// fresh combiner instance; the emitter's byte accounting is redone so
  /// shuffle_bytes reflects the post-combine volume.
  template <typename Record, typename K, typename V>
  static void CombineLocal(
      const std::function<std::unique_ptr<Combiner<K, V>>()>&
          combiner_factory,
      VectorEmitter<Record, K, V>& out) {
    auto& pairs = out.pairs_;
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::unique_ptr<Combiner<K, V>> combiner = combiner_factory();
    std::vector<std::pair<K, V>> combined;
    std::vector<V> values;
    uint64_t bytes = 0;
    for (size_t i = 0; i < pairs.size();) {
      size_t j = i + 1;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      values.clear();
      values.reserve(j - i);
      for (size_t v = i; v < j; ++v) {
        values.push_back(std::move(pairs[v].second));
      }
      V result = combiner->Combine(pairs[i].first, values);
      bytes += SerializedSize(pairs[i].first) + SerializedSize(result);
      combined.emplace_back(pairs[i].first, std::move(result));
      i = j;
    }
    pairs = std::move(combined);
    out.bytes_ = bytes;
  }

  RunnerOptions options_;
  ThreadPool pool_;
};

}  // namespace p3c::mr

#endif  // P3C_MAPREDUCE_RUNNER_H_
